// Sideways information passing (docs/KERNELS.md): the split-block bloom
// filter itself, and the contract of pushing it into the shuffle producers.
// Under test: (1) the filter has no false negatives and its parallel
// per-fragment build is bit-identical to a serial build at any thread
// count; (2) for every paper workload and strategy, running with
// --bloom=on changes NOTHING observable except shuffle volume and bloom.*
// accounting — outputs, stages, and all other counters are bit-identical
// to the unfiltered run, at 1 and at 8 threads; (3) recovery replays a
// faulted filtered exchange bit-identically.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "data/workloads.h"
#include "exec/bloom.h"
#include "exec/shuffle.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/explain.h"
#include "obs/feedback.h"
#include "plan/advisor.h"
#include "plan/strategies.h"
#include "runtime/parallel.h"
#include "test_util.h"

namespace ptp {
namespace {

WorkloadScale TinyScale() {
  WorkloadScale scale;
  scale.twitter.num_nodes = 400;
  scale.twitter.num_edges = 2500;
  scale.twitter.zipf_exponent = 0.7;
  scale.freebase_scale = 0.08;
  scale.seed = 99;
  return scale;
}

// ---------------------------------------------------------------------------
// The filter itself.
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  Rng rng(11);
  BloomFilter filter(10000);
  std::vector<uint64_t> keys;
  keys.reserve(10000);
  for (int i = 0; i < 10000; ++i) keys.push_back(Mix64(rng.Next()));
  for (uint64_t h : keys) filter.Add(h);
  for (uint64_t h : keys) {
    ASSERT_TRUE(filter.MayContain(h)) << "false negative for " << h;
  }
}

TEST(BloomFilterTest, FalsePositiveRateIsSmallAtBudgetLoad) {
  Rng rng(12);
  const size_t n = 4096;
  BloomFilter filter(n);
  for (size_t i = 0; i < n; ++i) filter.Add(Mix64(rng.Next()));
  // Fill lands near ln2 * k / bits-per-key when sized right, far from
  // saturation.
  EXPECT_GT(filter.FillRatio(), 0.05);
  EXPECT_LT(filter.FillRatio(), 0.5);
  size_t positives = 0;
  const size_t probes = 20000;
  for (size_t i = 0; i < probes; ++i) {
    if (filter.MayContain(Mix64(rng.Next() ^ 0xdeadbeefULL))) ++positives;
  }
  // 4 bits in one block at ~12 bits/key gives a few percent; anything over
  // 15% means the layout or sizing regressed.
  EXPECT_LT(static_cast<double>(positives) / static_cast<double>(probes),
            0.15);
}

TEST(BloomFilterTest, MergeOrRejectsMismatchedBlockCounts) {
  BloomFilter a(16);
  BloomFilter b(100000);
  ASSERT_NE(a.num_blocks(), b.num_blocks());
  EXPECT_FALSE(a.MergeOr(b).ok());
  BloomFilter c(16);
  EXPECT_TRUE(a.MergeOr(c).ok());
}

// The parallel per-fragment build must be indistinguishable from a serial
// insertion loop over the same tuples — same size, same bits (observed
// through MayContain and FillRatio) — at every thread count.
TEST(BloomFilterTest, ParallelBuildIsBitIdenticalToSerialBuild) {
  Rng rng(13);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 5000, 300, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, 16);
  const uint64_t salt = 7;
  const std::vector<int> key_cols = {0};

  // Serial reference: one filter, one loop, same key hashing as the
  // shuffle scatter.
  BloomFilter ref(rel.NumTuples());
  for (size_t row = 0; row < rel.NumTuples(); ++row) {
    const Value* t = rel.Row(row);
    uint64_t h = 0;
    for (int col : key_cols) h = HashCombine(h, HashWithSalt(t[col], salt));
    ref.Add(h);
  }

  for (int threads : {1, 4, 8}) {
    runtime::SetThreads(threads);
    BloomBuildStats stats;
    BloomFilter built = BuildShuffleBloomFilter(dist, key_cols, salt, &stats);
    EXPECT_EQ(stats.build_tuples, rel.NumTuples());
    EXPECT_EQ(stats.size_bytes, built.SizeBytes());
    ASSERT_EQ(built.num_blocks(), ref.num_blocks()) << threads << " threads";
    EXPECT_DOUBLE_EQ(built.FillRatio(), ref.FillRatio())
        << threads << " threads";
    Rng probe_rng(14);
    for (int i = 0; i < 50000; ++i) {
      const uint64_t h = Mix64(probe_rng.Next());
      ASSERT_EQ(built.MayContain(h), ref.MayContain(h))
          << threads << " threads, probe " << i;
    }
  }
  runtime::SetThreads(0);
}

// ---------------------------------------------------------------------------
// On/off conformance across the strategy matrix.
// ---------------------------------------------------------------------------

struct RunRecord {
  StrategyResult result;
  std::vector<std::pair<std::string, uint64_t>> counters;
};

RunRecord RunWith(int threads, const NormalizedQuery& q, ShuffleKind shuffle,
                  JoinKind join, const StrategyOptions& opts,
                  const std::string& faults = "") {
  runtime::SetThreads(threads);
  CounterRegistry registry;
  CounterRegistry* prev_reg = SetActiveCounterRegistry(&registry);
  FaultInjector* prev_inj = nullptr;
  std::unique_ptr<FaultInjector> injector;
  if (!faults.empty()) {
    auto plan = FaultPlan::Parse(faults);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    injector = std::make_unique<FaultInjector>(std::move(plan).value());
    prev_inj = SetActiveFaultInjector(injector.get());
  }
  auto result = RunStrategy(q, shuffle, join, opts);
  if (injector != nullptr) SetActiveFaultInjector(prev_inj);
  SetActiveCounterRegistry(prev_reg);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunRecord record;
  record.result = std::move(result).value();
  record.counters = registry.CounterSnapshot();
  runtime::SetThreads(0);
  return record;
}

// Counters allowed to differ between a filtered and an unfiltered run:
// bloom accounting, shuffle volume, and local-join / sort work counters
// (the filter's whole point is that less data reaches them). Everything
// else — outputs, retries, faults, dedup — must be bit-identical.
bool MayVaryWithBloom(const std::string& name) {
  for (const char* prefix : {"bloom.", "shuffle.tuples_sent",
                             "shuffle.bytes_sent", "ht.", "pipeline.",
                             "sort.", "tj."}) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

std::vector<std::pair<std::string, uint64_t>> InvariantCounters(
    const std::vector<std::pair<std::string, uint64_t>>& counters) {
  std::vector<std::pair<std::string, uint64_t>> kept;
  for (const auto& kv : counters) {
    if (!MayVaryWithBloom(kv.first)) kept.push_back(kv);
  }
  return kept;
}

uint64_t CounterOr(const RunRecord& r, const std::string& name,
                   uint64_t fallback = 0) {
  for (const auto& [n, v] : r.counters) {
    if (n == name) return v;
  }
  return fallback;
}

// EXPLAIN ANALYZE structure with the legitimately-varying volume tokens
// removed: shuffle lines keep only their label, the summary drops the
// shuffled= figure, and the bloom: section is excluded. What remains —
// plan line, stage rows, output/intermediate figures — must be identical
// between a filtered and an unfiltered run.
std::string StructuralExplainDigest(const std::string& text) {
  std::string digest;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.find("  bloom:") == 0) continue;
    size_t pos = line.find(": sent=");
    if (line.find("shuffle ") != std::string::npos &&
        pos != std::string::npos) {
      line = line.substr(0, pos);
    }
    pos = line.find("shuffled=");
    if (pos != std::string::npos) {
      const size_t keep = line.find("max_intermediate=");
      line = line.substr(0, pos) + (keep == std::string::npos
                                        ? std::string()
                                        : line.substr(keep));
    }
    digest += line;
    digest += '\n';
  }
  return digest;
}

void ExpectIdenticalRuns(const RunRecord& a, const RunRecord& b,
                         const std::string& context) {
  ASSERT_EQ(a.result.output.NumTuples(), b.result.output.NumTuples())
      << context;
  EXPECT_EQ(a.result.output.data(), b.result.output.data())
      << context << ": gathered results differ";
  const QueryMetrics& am = a.result.metrics;
  const QueryMetrics& bm = b.result.metrics;
  ASSERT_EQ(am.shuffles.size(), bm.shuffles.size()) << context;
  for (size_t i = 0; i < am.shuffles.size(); ++i) {
    EXPECT_EQ(am.shuffles[i].label, bm.shuffles[i].label) << context;
    EXPECT_EQ(am.shuffles[i].tuples_sent, bm.shuffles[i].tuples_sent)
        << context << ": shuffle " << am.shuffles[i].label;
    EXPECT_EQ(am.shuffles[i].bloom_tested, bm.shuffles[i].bloom_tested)
        << context << ": shuffle " << am.shuffles[i].label;
    EXPECT_EQ(am.shuffles[i].bloom_filtered, bm.shuffles[i].bloom_filtered)
        << context << ": shuffle " << am.shuffles[i].label;
  }
  EXPECT_EQ(am.output_tuples, bm.output_tuples) << context;
  EXPECT_EQ(a.counters, b.counters) << context;
}

class BloomConformance : public ::testing::TestWithParam<int> {
  void TearDown() override { runtime::SetThreads(0); }
};

TEST_P(BloomConformance, FilterChangesVolumeAndNothingElse) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(GetParam());
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();

  StrategyOptions off_opts;
  off_opts.num_workers = 16;
  StrategyOptions on_opts = off_opts;
  on_opts.bloom = true;

  for (const auto& [shuffle, join] : AllStrategies()) {
    const std::string name = StrategyName(shuffle, join);
    const std::string context = wl->id + std::string(" ") + name;
    RunRecord off = RunWith(1, wl->normalized, shuffle, join, off_opts);
    RunRecord on = RunWith(1, wl->normalized, shuffle, join, on_opts);

    // The filter never invents or loses results.
    ASSERT_EQ(off.result.output.NumTuples(), on.result.output.NumTuples())
        << context;
    EXPECT_EQ(off.result.output.data(), on.result.output.data())
        << context << ": bloom=on changed the gathered output";

    const QueryMetrics& om = off.result.metrics;
    const QueryMetrics& nm = on.result.metrics;
    EXPECT_EQ(om.output_tuples, nm.output_tuples) << context;
    EXPECT_EQ(om.max_intermediate_tuples, nm.max_intermediate_tuples)
        << context;
    ASSERT_EQ(om.stages.size(), nm.stages.size()) << context;
    for (size_t i = 0; i < om.stages.size(); ++i) {
      EXPECT_EQ(om.stages[i].label, nm.stages[i].label) << context;
      EXPECT_EQ(om.stages[i].output_tuples, nm.stages[i].output_tuples)
          << context << ": stage " << om.stages[i].label;
    }
    ASSERT_EQ(om.shuffles.size(), nm.shuffles.size()) << context;
    for (size_t i = 0; i < om.shuffles.size(); ++i) {
      EXPECT_EQ(om.shuffles[i].label, nm.shuffles[i].label) << context;
      EXPECT_LE(nm.shuffles[i].tuples_sent, om.shuffles[i].tuples_sent)
          << context << ": the filter can only shrink "
          << om.shuffles[i].label;
      EXPECT_EQ(om.shuffles[i].tuples_sent - nm.shuffles[i].tuples_sent,
                nm.shuffles[i].bloom_filtered)
          << context << ": dropped tuples must equal bloom_filtered at "
          << om.shuffles[i].label;
    }

    // Everything the filter doesn't touch stays bit-identical.
    EXPECT_EQ(InvariantCounters(off.counters), InvariantCounters(on.counters))
        << context;
    if (name.rfind("RS_", 0) != 0) {
      // Only the regular-shuffle family pushes filters today; elsewhere
      // --bloom=on must be a perfect no-op.
      ExpectIdenticalRuns(off, on, context + " (non-RS no-op)");
      EXPECT_EQ(CounterOr(on, "bloom.filters_built"), 0u) << context;
    }

    // EXPLAIN ANALYZE: same structure modulo the volume tokens.
    ExplainOptions eo;
    eo.include_timings = false;
    const std::string off_text =
        ExplainAnalyzeText(name, off.result, eo);
    const std::string on_text = ExplainAnalyzeText(name, on.result, eo);
    EXPECT_EQ(StructuralExplainDigest(off_text),
              StructuralExplainDigest(on_text))
        << context << "\n--- off ---\n" << off_text << "--- on ---\n"
        << on_text;

    // Filtered runs are thread-count independent, bloom accounting
    // included.
    RunRecord on8 = RunWith(8, wl->normalized, shuffle, join, on_opts);
    ExpectIdenticalRuns(on, on8, context + " (bloom on, 1 vs 8 threads)");
  }
}

INSTANTIATE_TEST_SUITE_P(Q1toQ8, BloomConformance, ::testing::Range(1, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

// Q3's constant-heavy predicates make the first build side tiny, so the
// pushed filter must actually kill tuples — and the books must balance:
// bytes_saved = filtered * row width, EXPLAIN surfaces the bloom section.
TEST(BloomEffectTest, SelectiveQueryFiltersTuplesAndBalancesTheBooks) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();

  StrategyOptions opts;
  opts.num_workers = 16;
  opts.bloom = true;
  RunRecord on = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                         JoinKind::kHashJoin, opts);

  size_t tested = 0, filtered = 0, bytes_saved = 0;
  for (const ShuffleMetrics& s : on.result.metrics.shuffles) {
    tested += s.bloom_tested;
    filtered += s.bloom_filtered;
    bytes_saved += s.bloom_bytes_saved;
    if (s.bloom_filtered > 0) {
      // bytes_saved = filtered * row width; the width (arity *
      // sizeof(Value)) is a positive whole number of Values.
      EXPECT_GE(s.bloom_bytes_saved, s.bloom_filtered * sizeof(Value))
          << s.label;
      EXPECT_EQ(s.bloom_bytes_saved % (s.bloom_filtered * sizeof(Value)), 0u)
          << s.label;
    } else {
      EXPECT_EQ(s.bloom_bytes_saved, 0u) << s.label;
    }
  }
  EXPECT_GT(tested, 0u);
  EXPECT_GT(filtered, 0u) << "Q3's filter should kill doomed tuples";
  EXPECT_EQ(CounterOr(on, "bloom.tuples_tested"), tested);
  EXPECT_EQ(CounterOr(on, "bloom.tuples_filtered"), filtered);
  EXPECT_EQ(CounterOr(on, "bloom.bytes_saved"), bytes_saved);
  EXPECT_GE(CounterOr(on, "bloom.filters_built"), 1u);

  ExplainOptions eo;
  eo.include_timings = false;
  const std::string text = ExplainAnalyzeText("RS_HJ", on.result, eo);
  EXPECT_NE(text.find("bloom: filtered="), std::string::npos) << text;
  EXPECT_NE(text.find("bloom_filtered="), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Recovery across a filtered exchange.
// ---------------------------------------------------------------------------

size_t TotalRetries(const QueryMetrics& m) {
  size_t total = 0;
  for (const StageMetrics& s : m.stages) total += s.retries;
  for (const ShuffleMetrics& s : m.shuffles) total += s.retries;
  return total;
}

// Every exchange — including the filtered ones — loses all of its first
// attempt. The replay must re-apply the same filter decisions: recovered
// output, per-exchange volume, and bloom accounting all bit-identical to
// the fault-free filtered run, at 1 and 8 threads.
TEST(BloomRecoveryTest, ReplayedFilteredExchangeIsBitIdentical) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();

  StrategyOptions opts;
  opts.num_workers = 16;
  opts.bloom = true;
  RunRecord clean = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                            JoinKind::kHashJoin, opts);
  size_t clean_filtered = 0;
  for (const ShuffleMetrics& s : clean.result.metrics.shuffles) {
    clean_filtered += s.bloom_filtered;
  }
  ASSERT_GT(clean_filtered, 0u) << "schedule must cross a filtered exchange";

  const std::string schedule = "drop@attempt=0";
  RunRecord faulted = RunWith(8, wl->normalized, ShuffleKind::kRegular,
                              JoinKind::kHashJoin, opts, schedule);
  const QueryMetrics& fm = faulted.result.metrics;
  EXPECT_FALSE(fm.failed) << fm.fail_reason;
  EXPECT_GE(TotalRetries(fm), 1u);
  EXPECT_EQ(faulted.result.output.data(), clean.result.output.data())
      << "recovered filtered run differs from fault-free filtered run";
  const QueryMetrics& cm = clean.result.metrics;
  ASSERT_EQ(fm.shuffles.size(), cm.shuffles.size());
  for (size_t i = 0; i < cm.shuffles.size(); ++i) {
    EXPECT_EQ(fm.shuffles[i].tuples_sent, cm.shuffles[i].tuples_sent)
        << cm.shuffles[i].label;
    EXPECT_EQ(fm.shuffles[i].bloom_tested, cm.shuffles[i].bloom_tested)
        << cm.shuffles[i].label;
    EXPECT_EQ(fm.shuffles[i].bloom_filtered, cm.shuffles[i].bloom_filtered)
        << cm.shuffles[i].label;
  }

  // Recovery is deterministic: the serial replay of the same schedule is
  // indistinguishable, counters included.
  RunRecord serial = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                             JoinKind::kHashJoin, opts, schedule);
  EXPECT_EQ(serial.result.output.data(), faulted.result.output.data());
  EXPECT_EQ(serial.counters, faulted.counters);
}

// ---------------------------------------------------------------------------
// Advisor decision.
// ---------------------------------------------------------------------------

TEST(BloomAdvisorTest, SelectivePredicatesTurnTheFilterOn) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  const StrategyAdvice advice = AdviseStrategy(wl->normalized, 16, nullptr);
  EXPECT_GE(advice.est_bloom_reduction, 0.25)
      << "Q3's constants should make the filter look worth it";
  EXPECT_TRUE(advice.use_bloom);
}

TEST(BloomAdvisorTest, MeasuredSelectivityOverridesTheEstimate) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();

  QueryFeedback qf;
  qf.query_key = wl->id;
  qf.workers = 16;
  StrategyFeedback sf;
  sf.strategy = "RS_HJ";
  sf.tuples_shuffled = 1000;
  sf.output_tuples = 10;
  sf.bloom_tested = 1000;
  sf.bloom_filtered = 10;  // measured: the filter barely fired
  qf.strategies.push_back(sf);

  const StrategyAdvice advice = AdviseStrategy(wl->normalized, 16, &qf);
  EXPECT_NEAR(advice.est_bloom_reduction, 0.01, 1e-9);
  EXPECT_FALSE(advice.use_bloom)
      << "a measured useless filter must override a hopeful estimate";

  qf.strategies[0].bloom_filtered = 900;  // measured: the filter earns rent
  const StrategyAdvice advice2 = AdviseStrategy(wl->normalized, 16, &qf);
  EXPECT_NEAR(advice2.est_bloom_reduction, 0.9, 1e-9);
  EXPECT_TRUE(advice2.use_bloom);
}

}  // namespace
}  // namespace ptp
