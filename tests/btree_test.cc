#include "tj/btree.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "test_util.h"
#include "tj/btree_trie.h"
#include "tj/leapfrog.h"
#include "tj/trie_iterator.h"
#include "tj/tributary_join.h"

namespace ptp {
namespace {

TEST(BPlusTreeTest, InsertAndOrderedScan) {
  BPlusTree tree(1, /*fanout=*/4);
  const std::vector<Value> values = {5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
  for (Value v : values) tree.Insert(&v);
  EXPECT_EQ(tree.size(), values.size());
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<Value> walked;
  for (auto pos = tree.Begin(); !pos.IsEnd(); pos = tree.Next(pos)) {
    walked.push_back(tree.Row(pos)[0]);
  }
  EXPECT_EQ(walked, (std::vector<Value>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(BPlusTreeTest, DuplicatesKept) {
  BPlusTree tree(1, 4);
  for (int i = 0; i < 20; ++i) {
    Value v = 7;
    tree.Insert(&v);
  }
  EXPECT_EQ(tree.size(), 20u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, LowerBoundFullKey) {
  BPlusTree tree(1, 4);
  for (Value v : {10, 20, 30, 40, 50}) tree.Insert(&v);
  Value key = 25;
  auto pos = tree.LowerBound(&key, 1);
  ASSERT_FALSE(pos.IsEnd());
  EXPECT_EQ(tree.Row(pos)[0], 30);
  key = 50;
  pos = tree.LowerBound(&key, 1);
  ASSERT_FALSE(pos.IsEnd());
  EXPECT_EQ(tree.Row(pos)[0], 50);
  key = 51;
  EXPECT_TRUE(tree.LowerBound(&key, 1).IsEnd());
}

TEST(BPlusTreeTest, LowerBoundPrefix) {
  BPlusTree tree(2, 4);
  for (Value a = 0; a < 10; ++a) {
    for (Value b = 0; b < 3; ++b) {
      Value row[] = {a, b * 10};
      tree.Insert(row);
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  Value key[] = {4, 0};
  auto pos = tree.LowerBound(key, 1);  // prefix only
  ASSERT_FALSE(pos.IsEnd());
  EXPECT_EQ(tree.Row(pos)[0], 4);
  EXPECT_EQ(tree.Row(pos)[1], 0);
  Value key2[] = {4, 15};
  pos = tree.LowerBound(key2, 2);
  ASSERT_FALSE(pos.IsEnd());
  EXPECT_EQ(tree.Row(pos)[0], 4);
  EXPECT_EQ(tree.Row(pos)[1], 20);
}

TEST(BPlusTreeTest, RandomizedAgainstSortedVector) {
  Rng rng(44);
  BPlusTree tree(2, 8);
  std::vector<Tuple> rows;
  for (int i = 0; i < 2000; ++i) {
    Tuple t = {static_cast<Value>(rng.Uniform(50)),
               static_cast<Value>(rng.Uniform(50))};
    rows.push_back(t);
    tree.Insert(t.data());
  }
  EXPECT_TRUE(tree.CheckInvariants());
  std::sort(rows.begin(), rows.end());
  size_t i = 0;
  for (auto pos = tree.Begin(); !pos.IsEnd(); pos = tree.Next(pos), ++i) {
    ASSERT_LT(i, rows.size());
    EXPECT_EQ(tree.Row(pos)[0], rows[i][0]);
    EXPECT_EQ(tree.Row(pos)[1], rows[i][1]);
  }
  EXPECT_EQ(i, rows.size());
  // Random lower-bound probes against std::lower_bound.
  for (int probe = 0; probe < 200; ++probe) {
    Tuple key = {static_cast<Value>(rng.Uniform(55)),
                 static_cast<Value>(rng.Uniform(55))};
    auto expected = std::lower_bound(rows.begin(), rows.end(), key);
    auto pos = tree.LowerBound(key.data(), 2);
    if (expected == rows.end()) {
      EXPECT_TRUE(pos.IsEnd());
    } else {
      ASSERT_FALSE(pos.IsEnd());
      EXPECT_EQ(tree.Row(pos)[0], (*expected)[0]);
      EXPECT_EQ(tree.Row(pos)[1], (*expected)[1]);
    }
  }
}

TEST(BTreeTrieIteratorTest, MatchesArrayTrieWalk) {
  Rng rng(45);
  Relation rel = test::RandomBinaryRelation("R", {"a", "b"}, 300, 25, &rng);
  BPlusTree tree(2);
  tree.InsertAll(rel);
  BTreeTrieIterator it(&tree);

  Relation sorted = rel;
  sorted.SortLex();
  // Walk level 0 and for each key the level-1 keys; compare against the
  // sorted relation's distinct structure.
  it.Open();
  size_t row = 0;
  while (!it.AtEnd()) {
    const Value a = it.Key();
    EXPECT_EQ(a, sorted.At(row, 0));
    it.Open();
    while (!it.AtEnd()) {
      ASSERT_LT(row, sorted.NumTuples());
      EXPECT_EQ(a, sorted.At(row, 0));
      EXPECT_EQ(it.Key(), sorted.At(row, 1));
      // Skip duplicates in the sorted relation.
      while (row < sorted.NumTuples() && sorted.At(row, 0) == a &&
             sorted.At(row, 1) == it.Key()) {
        ++row;
      }
      it.Next();
    }
    it.Up();
    it.Next();
  }
  EXPECT_EQ(row, sorted.NumTuples());
}

TEST(BTreeTrieIteratorTest, SeekWithinPrefix) {
  BPlusTree tree(2);
  for (Value b : {2, 4, 8}) {
    Value row[] = {1, b};
    tree.Insert(row);
  }
  Value row2[] = {2, 1};
  tree.Insert(row2);
  BTreeTrieIterator it(&tree);
  it.Open();   // a = 1
  it.Open();   // b in {2,4,8}
  it.Seek(5);
  EXPECT_EQ(it.Key(), 8);
  it.Seek(9);  // must not leak into a=2
  EXPECT_TRUE(it.AtEnd());
  it.Up();
  it.Next();
  EXPECT_EQ(it.Key(), 2);
}

TEST(BTreeBackendTest, TributaryJoinResultsIdentical) {
  Rng rng(46);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"x", "y"}, test::RandomBinaryRelation("R", {"x", "y"}, 150, 18, &rng)});
  q.atoms.push_back(
      {{"y", "z"}, test::RandomBinaryRelation("S", {"y", "z"}, 150, 18, &rng)});
  q.atoms.push_back(
      {{"z", "x"}, test::RandomBinaryRelation("T", {"z", "x"}, 150, 18, &rng)});
  q.head_vars = {"x", "y", "z"};

  TJOptions array_opts;
  auto array_result = TributaryJoinQuery(q, {"x", "y", "z"}, array_opts);
  ASSERT_TRUE(array_result.ok());

  TJOptions btree_opts;
  btree_opts.backend = TJBackend::kBTree;
  TJMetrics btree_metrics;
  auto btree_result =
      TributaryJoinQuery(q, {"x", "y", "z"}, btree_opts, &btree_metrics);
  ASSERT_TRUE(btree_result.ok()) << btree_result.status().ToString();

  EXPECT_TRUE(array_result->EqualsUnordered(*btree_result));
  EXPECT_GT(btree_metrics.sort_seconds, 0.0);  // the tree build phase
}

TEST(BTreeBackendTest, LeapfrogAcrossMixedBackends) {
  // The leapfrog machinery is backend-agnostic: intersect an array trie
  // with a B-tree trie.
  Relation a("A", Schema{"x"});
  for (Value v : {1, 3, 5, 7, 9, 11}) a.AddTuple({v});
  a.SortLex();
  BPlusTree tree(1);
  for (Value v : {2, 3, 7, 8, 11}) tree.Insert(&v);

  TrieIterator ia(&a);
  BTreeTrieIterator ib(&tree);
  ia.Open();
  ib.Open();
  LeapfrogJoin lf({&ia, &ib});
  std::vector<Value> common;
  while (!lf.AtEnd()) {
    common.push_back(lf.Key());
    lf.Next();
  }
  EXPECT_EQ(common, (std::vector<Value>{3, 7, 11}));
}

}  // namespace
}  // namespace ptp
