#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "gtest/gtest.h"

namespace ptp {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kUnavailable}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterEven(int v) {
  PTP_ASSIGN_OR_RETURN(int half, HalveEven(v));
  return HalveEven(half);
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto err = QuarterEven(6);  // 6/2 = 3, odd
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(HashTest, Mix64ChangesOnEveryBitFlip) {
  const uint64_t base = Mix64(0x1234);
  for (int bit = 0; bit < 64; ++bit) {
    EXPECT_NE(Mix64(0x1234ULL ^ (1ULL << bit)), base) << bit;
  }
}

TEST(HashTest, SaltsGiveIndependentFamilies) {
  // The HyperCube algorithm requires an independent h_i per dimension: with
  // the same values, different salts must disagree somewhere.
  int disagreements = 0;
  for (int64_t v = 0; v < 100; ++v) {
    if (HashToBucket(v, 8, 1) != HashToBucket(v, 8, 2)) ++disagreements;
  }
  EXPECT_GT(disagreements, 50);
}

TEST(HashTest, BucketsInRangeAndBalancedish) {
  std::vector<int> counts(16, 0);
  for (int64_t v = 0; v < 16000; ++v) {
    uint32_t b = HashToBucket(v, 16, 5);
    ASSERT_LT(b, 16u);
    ++counts[b];
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
  EXPECT_EQ(HashToBucket(1234, 1, 5), 0u);  // single bucket short-circuits
}

TEST(StrUtilTest, SplitAndTrim) {
  EXPECT_EQ(SplitAndTrim(" a , b ,c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAndTrim("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitAndTrim("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtilTest, StripAndStartsWith) {
  EXPECT_EQ(StripWhitespace("  hi \t"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StrUtilTest, JoinAndFormat) {
  EXPECT_EQ(Join({"x", "y", "z"}, " < "), "x < y < z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

}  // namespace
}  // namespace ptp
