#include "tj/cost_model.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "tj/order_optimizer.h"
#include "tj/tributary_join.h"

namespace ptp {
namespace {

TEST(FoldStepCostTest, MatchesEquation4) {
  // Cost = S1 + S1*(S2 + S2*(S3)) for S = (2, 3, 4):
  // inner = 4; mid = 3 + 3*4 = 15; outer = 2 + 2*15 = 32.
  EXPECT_DOUBLE_EQ(FoldStepCost({2, 3, 4}), 32.0);
  EXPECT_DOUBLE_EQ(FoldStepCost({5}), 5.0);
  EXPECT_DOUBLE_EQ(FoldStepCost({}), 0.0);
  EXPECT_DOUBLE_EQ(FoldStepCost({0, 100}), 0.0);  // empty first step
}

TEST(CostModelTest, StepOneIsMinDistinctOfFirstVariable) {
  // R(x,y) with 3 distinct x; S(x,z) with 2 distinct x.
  Relation r("R", Schema{"x", "y"});
  r.AddTuple({1, 1});
  r.AddTuple({2, 1});
  r.AddTuple({3, 1});
  Relation s("S", Schema{"x", "z"});
  s.AddTuple({1, 5});
  s.AddTuple({2, 6});
  TJCostModel model({&r, &s});
  std::vector<double> steps = model.StepSizes({"x", "y", "z"});
  EXPECT_DOUBLE_EQ(steps[0], 2.0);  // min(V(R,x)=3, V(S,x)=2)
}

TEST(CostModelTest, ResidualStepUsesPrefixRatio) {
  // R(x,y): V(x)=2, V(x,y)=6 -> residual y-per-x = 3.
  Relation r("R", Schema{"x", "y"});
  for (Value x = 0; x < 2; ++x) {
    for (Value y = 0; y < 3; ++y) r.AddTuple({x, y});
  }
  TJCostModel model({&r});
  std::vector<double> steps = model.StepSizes({"x", "y"});
  EXPECT_DOUBLE_EQ(steps[0], 2.0);
  EXPECT_DOUBLE_EQ(steps[1], 3.0);
  EXPECT_DOUBLE_EQ(model.EstimateCost({"x", "y"}), 2.0 + 2.0 * 3.0);
}

TEST(CostModelTest, PrefersSelectiveVariableFirst) {
  // Selective relation Tiny(s) with 1 value joins R(s, t); starting with s
  // must be estimated cheaper than starting with t.
  Relation tiny("Tiny", Schema{"s"});
  tiny.AddTuple({3});
  Relation r("R", Schema{"s", "t"});
  for (Value s = 0; s < 50; ++s) {
    for (Value t = 0; t < 4; ++t) r.AddTuple({s, t * 100 + s});
  }
  TJCostModel model({&tiny, &r});
  EXPECT_LT(model.EstimateCost({"s", "t"}), model.EstimateCost({"t", "s"}));
}

TEST(CostModelTest, MemoizationGivesIdenticalRepeatedEstimates) {
  Rng rng(4);
  Relation r = test::RandomBinaryRelation("R", {"x", "y"}, 100, 20, &rng);
  Relation s = test::RandomBinaryRelation("S", {"y", "z"}, 100, 20, &rng);
  TJCostModel model({&r, &s});
  const double a = model.EstimateCost({"x", "y", "z"});
  const double b = model.EstimateCost({"x", "y", "z"});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(OrderOptimizerTest, CoversAllVariables) {
  Rng rng(6);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"x", "y"}, test::RandomBinaryRelation("R", {"x", "y"}, 60, 10, &rng)});
  q.atoms.push_back(
      {{"y", "z"}, test::RandomBinaryRelation("S", {"y", "z"}, 60, 10, &rng)});
  q.atoms.push_back(
      {{"z", "w"}, test::RandomBinaryRelation("T", {"z", "w"}, 60, 10, &rng)});
  q.head_vars = {"x", "w"};
  OrderChoice choice = OptimizeVariableOrder(q);
  EXPECT_EQ(choice.order.size(), 4u);
  for (const char* v : {"x", "y", "z", "w"}) {
    EXPECT_NE(std::find(choice.order.begin(), choice.order.end(), v),
              choice.order.end())
        << v;
  }
  EXPECT_GT(choice.estimated_cost, 0.0);
}

TEST(OrderOptimizerTest, ChosenOrderIsCostMinimalAmongEnumerated) {
  Rng rng(8);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"x", "y"}, test::RandomBinaryRelation("R", {"x", "y"}, 80, 12, &rng)});
  q.atoms.push_back(
      {{"y", "z"}, test::RandomBinaryRelation("S", {"y", "z"}, 80, 12, &rng)});
  q.atoms.push_back(
      {{"z", "x"}, test::RandomBinaryRelation("T", {"z", "x"}, 80, 12, &rng)});
  q.head_vars = {"x", "y", "z"};
  OrderChoice best = OptimizeVariableOrder(q);
  for (const OrderChoice& c : EnumerateOrders(q, 1000)) {
    EXPECT_LE(best.estimated_cost, c.estimated_cost + 1e-9);
  }
}

TEST(OrderOptimizerTest, GreedyFallbackProducesValidOrder) {
  // 9 join variables exceeds the exhaustive limit of 8.
  Rng rng(10);
  NormalizedQuery q;
  const char* vars[] = {"a", "b", "c", "d", "e", "f", "g", "h", "i", "a"};
  for (int i = 0; i < 9; ++i) {
    q.atoms.push_back({{vars[i], vars[i + 1]},
                       test::RandomBinaryRelation(
                           "R" + std::to_string(i), {vars[i], vars[i + 1]},
                           30, 6, &rng)});
  }
  q.head_vars = {"a"};
  OrderOptimizerOptions opts;
  opts.exhaustive_limit = 4;
  OrderChoice choice = OptimizeVariableOrder(q, opts);
  EXPECT_EQ(choice.order.size(), 9u);
}

TEST(OrderOptimizerTest, EstimatedCostCorrelatesWithSeeks) {
  // Weak-form validation of Sec. 5.2: across all orders of a skewed
  // triangle, the order with the best estimate should not be among the
  // worst actual seek counts. (Pearson r on the paper's queries ranges
  // 0.216..1.0, so demand only a positive relationship.)
  Rng rng(12);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"x", "y"}, test::RandomBinaryRelation("R", {"x", "y"}, 300, 60, &rng)});
  q.atoms.push_back(
      {{"y", "z"}, test::RandomBinaryRelation("S", {"y", "z"}, 40, 60, &rng)});
  q.atoms.push_back(
      {{"z", "x"}, test::RandomBinaryRelation("T", {"z", "x"}, 300, 60, &rng)});
  q.head_vars = {"x", "y", "z"};

  std::vector<OrderChoice> orders = EnumerateOrders(q, 6);
  double best_est = 1e300, best_seeks = 0, worst_seeks = 0;
  for (const OrderChoice& c : orders) {
    TJMetrics m;
    auto r = TributaryJoinQuery(q, c.order, {}, &m);
    ASSERT_TRUE(r.ok());
    if (c.estimated_cost < best_est) {
      best_est = c.estimated_cost;
      best_seeks = static_cast<double>(m.seeks);
    }
    worst_seeks = std::max(worst_seeks, static_cast<double>(m.seeks));
  }
  EXPECT_LE(best_seeks, worst_seeks);
}

}  // namespace
}  // namespace ptp
