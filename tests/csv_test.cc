#include "storage/csv.h"

#include <sstream>

#include "gtest/gtest.h"

namespace ptp {
namespace {

TEST(CsvTest, ReadsIntegers) {
  std::istringstream in("1,2\n3,4\n\n5,6\n");
  auto rel = ReadCsv(in, "R", Schema{"a", "b"}, nullptr);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->NumTuples(), 3u);
  EXPECT_EQ(rel->GetTuple(1), (Tuple{3, 4}));
}

TEST(CsvTest, InternsStrings) {
  Dictionary dict;
  std::istringstream in("1,Joe Pesci\n2,Robert De Niro\n3,Joe Pesci\n");
  auto rel = ReadCsv(in, "Names", Schema{"id", "name"}, &dict);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->NumTuples(), 3u);
  EXPECT_EQ(rel->At(0, 1), rel->At(2, 1));
  EXPECT_EQ(dict.String(rel->At(1, 1)), "Robert De Niro");
}

TEST(CsvTest, StringsWithoutDictionaryRejected) {
  std::istringstream in("1,abc\n");
  auto rel = ReadCsv(in, "R", Schema{"a", "b"}, nullptr);
  EXPECT_EQ(rel.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, ArityMismatchRejected) {
  std::istringstream in("1,2,3\n");
  auto rel = ReadCsv(in, "R", Schema{"a", "b"}, nullptr);
  EXPECT_FALSE(rel.ok());
}

TEST(CsvTest, HeaderSkipped) {
  std::istringstream in("src,dst\n1,2\n");
  CsvOptions options;
  options.skip_header = true;
  Dictionary dict;
  auto rel = ReadCsv(in, "R", Schema{"a", "b"}, &dict, options);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumTuples(), 1u);
}

TEST(CsvTest, TabDelimiter) {
  std::istringstream in("1\t2\n3\t4\n");
  CsvOptions options;
  options.delimiter = '\t';
  auto rel = ReadCsv(in, "R", Schema{"a", "b"}, nullptr, options);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumTuples(), 2u);
}

TEST(CsvTest, NegativeValues) {
  std::istringstream in("-5,10\n");
  auto rel = ReadCsv(in, "R", Schema{"a", "b"}, nullptr);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->At(0, 0), -5);
}

TEST(CsvTest, RoundTrip) {
  Relation rel("R", Schema{"a", "b", "c"});
  rel.AddTuple({1, -2, 3});
  rel.AddTuple({40, 50, 60});
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(out, rel).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, "R", rel.schema(), nullptr);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsUnordered(rel));
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto rel = ReadCsvFile("/nonexistent/definitely/missing.csv", "R",
                         Schema{"a"}, nullptr);
  EXPECT_EQ(rel.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ptp
