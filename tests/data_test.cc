#include <algorithm>
#include <map>

#include "data/freebase_gen.h"
#include "data/graph_gen.h"
#include "data/workloads.h"
#include "data/zipf.h"
#include "gtest/gtest.h"
#include "storage/stats.h"

namespace ptp {
namespace {

TEST(ZipfTest, SamplesWithinRangeAndSkewed) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(1);
  std::vector<size_t> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    size_t v = zipf.Sample(&rng);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  // Rank 0 must dominate rank 50 heavily under s=1.
  EXPECT_GT(counts[0], counts[50] * 10);
  // Every decile gets some mass.
  EXPECT_GT(counts[99] + counts[98] + counts[97], 0u);
}

TEST(ZipfTest, ZeroExponentIsUniformish) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(2);
  std::vector<size_t> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t c : counts) {
    EXPECT_GT(c, 700u);
    EXPECT_LT(c, 1300u);
  }
}

TEST(GraphGenTest, DeterministicAndDeduplicated) {
  GraphGenOptions opts;
  opts.num_nodes = 500;
  opts.num_edges = 3000;
  opts.seed = 9;
  Relation a = GeneratePowerLawGraph(opts);
  Relation b = GeneratePowerLawGraph(opts);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.NumTuples(), 3000u);
  Relation dedup = a;
  dedup.SortAndDedup();
  EXPECT_EQ(dedup.NumTuples(), a.NumTuples());
  // No self loops.
  for (size_t i = 0; i < a.NumTuples(); ++i) {
    EXPECT_NE(a.At(i, 0), a.At(i, 1));
  }
}

TEST(GraphGenTest, PowerLawHasHeavyHubs) {
  GraphGenOptions opts;
  opts.num_nodes = 2000;
  opts.num_edges = 20000;
  opts.zipf_exponent = 0.9;
  opts.seed = 10;
  Relation g = GeneratePowerLawGraph(opts);
  std::map<Value, size_t> outdeg;
  for (size_t i = 0; i < g.NumTuples(); ++i) ++outdeg[g.At(i, 0)];
  size_t max_deg = 0;
  for (const auto& [v, d] : outdeg) max_deg = std::max(max_deg, d);
  const double avg = static_cast<double>(g.NumTuples()) /
                     static_cast<double>(outdeg.size());
  // A power-law graph has hubs far above the average degree.
  EXPECT_GT(static_cast<double>(max_deg), 8 * avg);
}

TEST(GraphGenTest, UniformGraphHasNoExtremeHubs) {
  Relation g = GenerateUniformGraph(2000, 20000, 11);
  std::map<Value, size_t> outdeg;
  for (size_t i = 0; i < g.NumTuples(); ++i) ++outdeg[g.At(i, 0)];
  size_t max_deg = 0;
  for (const auto& [v, d] : outdeg) max_deg = std::max(max_deg, d);
  const double avg = static_cast<double>(g.NumTuples()) /
                     static_cast<double>(outdeg.size());
  EXPECT_LT(static_cast<double>(max_deg), 5 * avg);
}

TEST(FreebaseGenTest, SchemasAndProportionsMatchPaper) {
  FreebaseDataset ds = GenerateFreebase();
  for (const char* name :
       {"ObjectName", "ActorPerform", "PerformFilm", "DirectorFilm",
        "HonorAward", "HonorActor", "HonorYear"}) {
    EXPECT_TRUE(ds.catalog.Contains(name)) << name;
  }
  auto card = [&](const char* name) {
    return (*ds.catalog.Get(name))->NumTuples();
  };
  // |ActorPerform| == |PerformFilm| (one film per performance).
  EXPECT_EQ(card("ActorPerform"), card("PerformFilm"));
  // ObjectName dwarfs the join tables (paper: 54x).
  EXPECT_GT(card("ObjectName"), 10 * card("ActorPerform"));
  // Honor tables are an order of magnitude smaller.
  EXPECT_LT(card("HonorAward"), card("ActorPerform") / 5);
}

TEST(FreebaseGenTest, FamousEntitiesResolvable) {
  FreebaseDataset ds = GenerateFreebase();
  EXPECT_EQ(ds.catalog.dictionary().Lookup("Joe Pesci"), ds.joe_pesci);
  EXPECT_EQ(ds.catalog.dictionary().Lookup("Robert De Niro"), ds.de_niro);
  EXPECT_EQ(ds.catalog.dictionary().Lookup("The Academy Awards"),
            ds.academy_awards);
  // Pesci and De Niro share at least one film.
  const Relation& ap = **ds.catalog.Get("ActorPerform");
  const Relation& pf = **ds.catalog.Get("PerformFilm");
  const Relation& on = **ds.catalog.Get("ObjectName");
  // Resolve actor ids via ObjectName.
  Value pesci = -1, deniro = -1;
  for (size_t i = 0; i < on.NumTuples(); ++i) {
    if (on.At(i, 1) == ds.joe_pesci) pesci = on.At(i, 0);
    if (on.At(i, 1) == ds.de_niro) deniro = on.At(i, 0);
  }
  ASSERT_GE(pesci, 0);
  ASSERT_GE(deniro, 0);
  std::map<Value, Value> perform_to_film;
  for (size_t i = 0; i < pf.NumTuples(); ++i) {
    perform_to_film[pf.At(i, 0)] = pf.At(i, 1);
  }
  std::set<Value> pesci_films, deniro_films;
  for (size_t i = 0; i < ap.NumTuples(); ++i) {
    if (ap.At(i, 0) == pesci) {
      pesci_films.insert(perform_to_film.at(ap.At(i, 1)));
    }
    if (ap.At(i, 0) == deniro) {
      deniro_films.insert(perform_to_film.at(ap.At(i, 1)));
    }
  }
  std::vector<Value> shared;
  std::set_intersection(pesci_films.begin(), pesci_films.end(),
                        deniro_films.begin(), deniro_films.end(),
                        std::back_inserter(shared));
  EXPECT_GE(shared.size(), 2u);
}

TEST(FreebaseGenTest, ScalingScalesCardinalities) {
  FreebaseGenOptions base;
  FreebaseGenOptions half = base.Scaled(0.5);
  EXPECT_EQ(half.num_performances, base.num_performances / 2);
  EXPECT_GE(half.num_awards, 2u);
}

TEST(WorkloadFactoryTest, AllEightQueriesBuild) {
  WorkloadScale scale;
  scale.twitter.num_nodes = 300;
  scale.twitter.num_edges = 1500;
  scale.freebase_scale = 0.05;
  WorkloadFactory factory(scale);
  const bool expect_cyclic[] = {true, true, false, true,
                                true, true, false, true};
  for (int q = 1; q <= 8; ++q) {
    auto wl = factory.Make(q);
    ASSERT_TRUE(wl.ok()) << "Q" << q << ": " << wl.status().ToString();
    EXPECT_EQ(wl->id, "Q" + std::to_string(q));
    EXPECT_EQ(wl->cyclic, expect_cyclic[q - 1]) << wl->id;
    EXPECT_FALSE(wl->normalized.atoms.empty());
    // Constant selections were pushed down: no atom relation exceeds its
    // base cardinality, and Q3/Q7's selected ObjectName atoms are tiny.
    if (q == 3 || q == 7) {
      bool has_tiny = false;
      for (const auto& atom : wl->normalized.atoms) {
        if (atom.relation.NumTuples() <= 2) has_tiny = true;
      }
      EXPECT_TRUE(has_tiny) << wl->id;
    }
  }
}

TEST(WorkloadFactoryTest, DatasetsSharedAcrossQueries) {
  WorkloadScale scale;
  scale.twitter.num_nodes = 200;
  scale.twitter.num_edges = 800;
  scale.freebase_scale = 0.05;
  WorkloadFactory factory(scale);
  auto q1 = factory.Make(1);
  auto q2 = factory.Make(2);
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_EQ(q1->catalog.get(), q2->catalog.get());
}

TEST(WorkloadFactoryTest, InvalidQueryNumberRejected) {
  WorkloadFactory factory;
  EXPECT_FALSE(factory.Make(0).ok());
  EXPECT_FALSE(factory.Make(9).ok());
}

}  // namespace
}  // namespace ptp
