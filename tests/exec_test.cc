#include "exec/cluster.h"
#include "exec/local_ops.h"
#include "exec/metrics.h"
#include "exec/pipeline.h"
#include "exec/shuffle.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ptp {
namespace {

Relation SmallRel() {
  Relation r("R", Schema{"x", "y"});
  for (Value i = 0; i < 10; ++i) r.AddTuple({i, i * 10});
  return r;
}

TEST(ClusterTest, RoundRobinPartitionsEvenly) {
  DistributedRelation dist = PartitionRoundRobin(SmallRel(), 4);
  ASSERT_EQ(dist.size(), 4u);
  EXPECT_EQ(dist[0].NumTuples(), 3u);  // rows 0, 4, 8
  EXPECT_EQ(dist[1].NumTuples(), 3u);
  EXPECT_EQ(dist[2].NumTuples(), 2u);
  EXPECT_EQ(dist[3].NumTuples(), 2u);
  EXPECT_EQ(TotalTuples(dist), 10u);
  EXPECT_TRUE(Gather(dist).EqualsUnordered(SmallRel()));
}

TEST(ClusterTest, MoreWorkersThanTuples) {
  DistributedRelation dist = PartitionRoundRobin(SmallRel(), 16);
  EXPECT_EQ(dist.size(), 16u);
  EXPECT_EQ(TotalTuples(dist), 10u);
}

TEST(MetricsTest, SkewFactorDefinition) {
  EXPECT_DOUBLE_EQ(SkewFactor({10, 10, 10, 10}), 1.0);
  EXPECT_DOUBLE_EQ(SkewFactor({40, 0, 0, 0}), 4.0);
  EXPECT_DOUBLE_EQ(SkewFactor({}), 1.0);
  EXPECT_DOUBLE_EQ(SkewFactor({0, 0}), 1.0);
}

TEST(MetricsTest, SkewFactorSingleWorkerIsBalanced) {
  // One worker is max == avg by definition; must be exactly 1.0 even for
  // values where max/avg division could round.
  EXPECT_DOUBLE_EQ(SkewFactor({7}), 1.0);
  EXPECT_DOUBLE_EQ(SkewFactor({0}), 1.0);
  EXPECT_DOUBLE_EQ(SkewFactor({18446744073709551615ull}), 1.0);
}

TEST(MetricsTest, AbsorbAccumulates) {
  QueryMetrics a, b;
  a.EnsureWorkers(2);
  b.EnsureWorkers(2);
  a.worker_seconds = {1.0, 2.0};
  b.worker_seconds = {0.5, 0.5};
  a.wall_seconds = 2.0;
  b.wall_seconds = 1.0;
  b.shuffles.push_back({"s", 100, 1.0, 1.0});
  a.Absorb(b);
  EXPECT_DOUBLE_EQ(a.worker_seconds[0], 1.5);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 3.0);
  EXPECT_EQ(a.TuplesShuffled(), 100u);
}

TEST(MetricsTest, AbsorbGrowsToLargerWorkerCount) {
  // Absorbing metrics from a run with more workers must resize all three
  // per-worker vectors, not just worker_seconds.
  QueryMetrics a, b;
  a.EnsureWorkers(2);
  b.EnsureWorkers(4);
  b.worker_seconds = {1.0, 1.0, 1.0, 1.0};
  b.worker_sort_seconds = {0.25, 0.25, 0.25, 0.25};
  b.worker_join_seconds = {0.5, 0.5, 0.5, 0.5};
  a.Absorb(b);
  ASSERT_EQ(a.worker_seconds.size(), 4u);
  ASSERT_EQ(a.worker_sort_seconds.size(), 4u);
  ASSERT_EQ(a.worker_join_seconds.size(), 4u);
  EXPECT_DOUBLE_EQ(a.worker_seconds[3], 1.0);
  EXPECT_DOUBLE_EQ(a.worker_sort_seconds[3], 0.25);
  EXPECT_DOUBLE_EQ(a.worker_join_seconds[3], 0.5);
}

TEST(MetricsTest, AbsorbHandlesHandBuiltMetricsWithoutBreakdowns) {
  // A hand-built QueryMetrics may populate worker_seconds only; Absorb must
  // not read past the end of the missing sort/join breakdowns.
  QueryMetrics a, b;
  a.EnsureWorkers(1);
  b.worker_seconds = {2.0, 3.0};  // no EnsureWorkers: breakdowns stay empty
  a.Absorb(b);
  ASSERT_EQ(a.worker_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(a.worker_seconds[1], 3.0);
  ASSERT_GE(a.worker_sort_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(a.worker_sort_seconds[1], 0.0);
}

TEST(HashShuffleTest, PreservesTuplesAndCoPartitions) {
  Rng rng(3);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 200, 50, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, 8);
  ShuffleResult sr = HashShuffle(dist, {0}, 8, 7, "R ->h(x)").value();
  EXPECT_EQ(TotalTuples(sr.data), rel.NumTuples());
  EXPECT_EQ(sr.metrics.tuples_sent, rel.NumTuples());
  EXPECT_TRUE(Gather(sr.data).EqualsUnordered(rel));
  // Co-partitioning: same x never lands on two workers.
  std::map<Value, int> home;
  for (size_t w = 0; w < sr.data.size(); ++w) {
    for (size_t row = 0; row < sr.data[w].NumTuples(); ++row) {
      Value x = sr.data[w].At(row, 0);
      auto [it, inserted] = home.emplace(x, static_cast<int>(w));
      EXPECT_EQ(it->second, static_cast<int>(w)) << "x=" << x;
    }
  }
}

TEST(HashShuffleTest, MultiColumnKey) {
  Rng rng(5);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 100, 10, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, 4);
  ShuffleResult sr = HashShuffle(dist, {0, 1}, 4, 7, "R ->h(x,y)").value();
  EXPECT_TRUE(Gather(sr.data).EqualsUnordered(rel));
}

TEST(BroadcastShuffleTest, EveryWorkerGetsFullCopy) {
  Relation rel = SmallRel();
  DistributedRelation dist = PartitionRoundRobin(rel, 4);
  ShuffleResult sr = BroadcastShuffle(dist, 4, "Broadcast R").value();
  EXPECT_EQ(sr.metrics.tuples_sent, 40u);
  EXPECT_DOUBLE_EQ(sr.metrics.consumer_skew, 1.0);
  for (const Relation& frag : sr.data) {
    EXPECT_TRUE(frag.EqualsUnordered(rel));
  }
}

TEST(KeepInPlaceTest, NoNetworkTraffic) {
  DistributedRelation dist = PartitionRoundRobin(SmallRel(), 4);
  ShuffleResult sr = KeepInPlace(dist, "R (in place)");
  EXPECT_EQ(sr.metrics.tuples_sent, 0u);
  EXPECT_EQ(TotalTuples(sr.data), 10u);
}

TEST(HypercubeShuffleTest, TriangleJoinFindableLocally) {
  // After a HyperCube shuffle, the union of per-worker local joins must
  // equal the global join (Sec. 2.1 guarantee).
  Rng rng(7);
  Relation r = test::RandomBinaryRelation("R", {"x", "y"}, 120, 15, &rng);
  Relation s = test::RandomBinaryRelation("S", {"y", "z"}, 120, 15, &rng);
  Relation t = test::RandomBinaryRelation("T", {"z", "x"}, 120, 15, &rng);

  HypercubeConfig config;
  config.join_vars = {"x", "y", "z"};
  config.dims = {2, 2, 2};
  const std::vector<int> cell_map = IdentityCellMap(config);
  const int W = 8;

  auto shuffle = [&](const Relation& rel,
                     const std::vector<std::string>& vars) {
    return HypercubeShuffle(PartitionRoundRobin(rel, W), vars, config,
                            cell_map, W, "HCS " + rel.name())
        .value();
  };
  ShuffleResult sr = shuffle(r, {"x", "y"});
  ShuffleResult ss = shuffle(s, {"y", "z"});
  ShuffleResult st = shuffle(t, {"z", "x"});

  // Global expected result.
  NormalizedQuery q;
  q.atoms.push_back({{"x", "y"}, r});
  q.atoms.push_back({{"y", "z"}, s});
  q.atoms.push_back({{"z", "x"}, t});
  q.head_vars = {"x", "y", "z"};
  Relation expected = test::BruteForceJoin(q);

  // Union of local joins; also verify no duplicates across workers.
  Relation combined("combined", Schema{"x", "y", "z"});
  for (int w = 0; w < W; ++w) {
    const size_t wi = static_cast<size_t>(w);
    Relation local = HashJoinLocal(HashJoinLocal(sr.data[wi], ss.data[wi]),
                                   st.data[wi]);
    Relation proj = ProjectToVars(local, {"x", "y", "z"});
    combined.mutable_data().insert(combined.mutable_data().end(),
                                   proj.data().begin(), proj.data().end());
  }
  EXPECT_TRUE(combined.EqualsUnordered(expected));
}

TEST(HashJoinLocalTest, MatchesBruteForce) {
  Rng rng(9);
  Relation r = test::RandomBinaryRelation("R", {"x", "y"}, 80, 10, &rng);
  Relation s = test::RandomBinaryRelation("S", {"y", "z"}, 80, 10, &rng);
  NormalizedQuery q;
  q.atoms.push_back({{"x", "y"}, r});
  q.atoms.push_back({{"y", "z"}, s});
  q.head_vars = {"x", "y", "z"};
  Relation expected = test::BruteForceJoin(q);
  Relation joined = HashJoinLocal(r, s);
  EXPECT_TRUE(ProjectToVars(joined, {"x", "y", "z"})
                  .EqualsUnordered(expected));
}

TEST(SymmetricHashJoinTest, SameOutputAsClassicJoin) {
  Rng rng(31);
  for (int seed = 0; seed < 5; ++seed) {
    Rng r2(static_cast<uint64_t>(seed));
    Relation r = test::RandomBinaryRelation("R", {"x", "y"}, 90, 12, &r2);
    Relation s = test::RandomBinaryRelation("S", {"y", "z"}, 70, 12, &r2);
    Relation classic = HashJoinLocal(r, s);
    Relation symmetric = SymmetricHashJoinLocal(r, s);
    EXPECT_TRUE(classic.EqualsUnordered(symmetric)) << "seed " << seed;
    EXPECT_EQ(classic.schema().names(), symmetric.schema().names());
  }
}

TEST(SymmetricHashJoinTest, EmptySidesAndCrossProduct) {
  Relation empty("R", Schema{"x", "y"});
  Relation s("S", Schema{"y", "z"});
  s.AddTuple({1, 2});
  EXPECT_EQ(SymmetricHashJoinLocal(empty, s).NumTuples(), 0u);
  EXPECT_EQ(SymmetricHashJoinLocal(s, empty).NumTuples(), 0u);
  Relation a("A", Schema{"p"});
  a.AddTuple({1});
  a.AddTuple({2});
  Relation b("B", Schema{"q"});
  b.AddTuple({7});
  EXPECT_EQ(SymmetricHashJoinLocal(a, b).NumTuples(), 2u);
}

TEST(HashJoinLocalTest, MultiSharedColumns) {
  Relation r("R", Schema{"x", "y"});
  r.AddTuple({1, 2});
  r.AddTuple({1, 3});
  Relation s("S", Schema{"x", "y", "z"});
  s.AddTuple({1, 2, 99});
  s.AddTuple({1, 9, 50});
  Relation j = HashJoinLocal(r, s);
  ASSERT_EQ(j.NumTuples(), 1u);
  EXPECT_EQ(j.GetTuple(0), (Tuple{1, 2, 99}));
}

TEST(HashJoinLocalTest, CrossProductWhenNoSharedColumns) {
  Relation r("R", Schema{"a"});
  r.AddTuple({1});
  r.AddTuple({2});
  Relation s("S", Schema{"b"});
  s.AddTuple({10});
  s.AddTuple({20});
  s.AddTuple({30});
  EXPECT_EQ(HashJoinLocal(r, s).NumTuples(), 6u);
}

TEST(FilterByPredicatesTest, AppliesOnlyBoundPredicates) {
  Relation r("R", Schema{"x", "y"});
  r.AddTuple({1, 5});
  r.AddTuple({6, 5});
  std::vector<Predicate> preds = {
      {Term::Var("x"), CmpOp::kGt, Term::Var("y")},
      {Term::Var("z"), CmpOp::kLt, Term::Const(0)},  // z unbound: ignored
  };
  Relation f = FilterByPredicates(r, preds);
  ASSERT_EQ(f.NumTuples(), 1u);
  EXPECT_EQ(f.At(0, 0), 6);
}

TEST(SemiJoinLocalTest, KeepsMatchingTuples) {
  Relation r("R", Schema{"x", "y"});
  r.AddTuple({1, 10});
  r.AddTuple({2, 20});
  r.AddTuple({3, 30});
  Relation keys("K", Schema{"x"});
  keys.AddTuple({1});
  keys.AddTuple({3});
  Relation out = SemiJoinLocal(r, keys);
  EXPECT_EQ(out.NumTuples(), 2u);
}

TEST(SemiJoinLocalTest, NoSharedColumnsDependsOnEmptiness) {
  Relation r("R", Schema{"x"});
  r.AddTuple({1});
  Relation nonempty("K", Schema{"q"});
  nonempty.AddTuple({9});
  Relation empty("K", Schema{"q"});
  EXPECT_EQ(SemiJoinLocal(r, nonempty).NumTuples(), 1u);
  EXPECT_EQ(SemiJoinLocal(r, empty).NumTuples(), 0u);
}

TEST(DistinctProjectTest, RemovesDuplicates) {
  Relation r("R", Schema{"x", "y"});
  r.AddTuple({1, 5});
  r.AddTuple({1, 6});
  r.AddTuple({2, 5});
  Relation d = DistinctProject(r, {"x"});
  EXPECT_EQ(d.NumTuples(), 2u);
}

TEST(PipelineTest, LeftDeepMatchesBruteForce) {
  Rng rng(21);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"x", "y"}, test::RandomBinaryRelation("R", {"x", "y"}, 60, 9, &rng)});
  q.atoms.push_back(
      {{"y", "z"}, test::RandomBinaryRelation("S", {"y", "z"}, 60, 9, &rng)});
  q.atoms.push_back(
      {{"z", "x"}, test::RandomBinaryRelation("T", {"z", "x"}, 60, 9, &rng)});
  q.head_vars = {"x", "y", "z"};
  Relation expected = test::BruteForceJoin(q);

  std::vector<const Relation*> inputs = {&q.atoms[0].relation,
                                         &q.atoms[1].relation,
                                         &q.atoms[2].relation};
  PipelineStats stats;
  auto result = LeftDeepJoinLocal(inputs, {0, 1, 2}, {}, 1u << 30, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ProjectToVars(*result, {"x", "y", "z"})
                  .EqualsUnordered(expected));
  EXPECT_EQ(stats.join_outputs.size(), 2u);
  EXPECT_EQ(stats.join_outputs.back(), expected.NumTuples());
}

TEST(PipelineTest, BudgetAborts) {
  Relation big("R", Schema{"k", "a"});
  Relation big2("S", Schema{"k", "b"});
  for (Value i = 0; i < 200; ++i) {
    big.AddTuple({0, i});
    big2.AddTuple({0, i});
  }
  std::vector<const Relation*> inputs = {&big, &big2};
  auto result = LeftDeepJoinLocal(inputs, {0, 1}, {}, 1000, nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ptp
