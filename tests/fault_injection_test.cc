// Deterministic fault injection + recovery (docs/ROBUSTNESS.md). The core
// contract under test: a recoverable fault schedule must not change query
// results — every faulted run converges, via lineage replay and (when
// needed) plan degradation, to the same gathered output as the fault-free
// run, with the retries visible in the metrics; and recovery itself is
// bit-identical at every thread count.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/workloads.h"
#include "exec/recovery.h"
#include "exec/shuffle.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/explain.h"
#include "plan/semijoin_plan.h"
#include "plan/strategies.h"
#include "runtime/parallel.h"
#include "test_util.h"

namespace ptp {
namespace {

WorkloadScale TinyScale() {
  WorkloadScale scale;
  scale.twitter.num_nodes = 400;
  scale.twitter.num_edges = 2500;
  scale.twitter.zipf_exponent = 0.7;
  scale.freebase_scale = 0.08;
  scale.seed = 99;
  return scale;
}

// ---------------------------------------------------------------------------
// FaultPlan grammar.
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ParsesEveryKindAndKey) {
  auto plan = FaultPlan::Parse(
      "crash@worker=3,stage=join_1; crashmid@site=2,attempt=1; "
      "err@attempt=*; slow@worker=2,factor=8; "
      "drop@x=0,p=1,c=2; dup@p=4,label=HCS R(x, y)");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->specs.size(), 6u);

  EXPECT_EQ(plan->specs[0].kind, FaultKind::kCrashBefore);
  EXPECT_EQ(plan->specs[0].label, "join_1");
  EXPECT_EQ(plan->specs[0].worker, 3);
  EXPECT_EQ(plan->specs[0].attempt, 0);

  EXPECT_EQ(plan->specs[1].kind, FaultKind::kCrashDuring);
  EXPECT_EQ(plan->specs[1].site, 2);
  EXPECT_EQ(plan->specs[1].attempt, 1);

  EXPECT_EQ(plan->specs[2].kind, FaultKind::kOperatorError);
  EXPECT_EQ(plan->specs[2].attempt, FaultSpec::kEveryAttempt);

  EXPECT_EQ(plan->specs[3].kind, FaultKind::kStragglerDelay);
  EXPECT_DOUBLE_EQ(plan->specs[3].factor, 8.0);

  EXPECT_EQ(plan->specs[4].kind, FaultKind::kShuffleDrop);
  EXPECT_EQ(plan->specs[4].site, 0);
  EXPECT_EQ(plan->specs[4].producer, 1);
  EXPECT_EQ(plan->specs[4].consumer, 2);

  // Exchange labels keep interior spaces.
  EXPECT_EQ(plan->specs[5].kind, FaultKind::kShuffleDup);
  EXPECT_EQ(plan->specs[5].label, "HCS R(x, y)");
}

TEST(FaultPlanTest, RejectsMalformedSchedules) {
  EXPECT_FALSE(FaultPlan::Parse("explode@worker=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash@worker=abc").ok());
  EXPECT_FALSE(FaultPlan::Parse("drop@p=").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash@worker").ok());
  EXPECT_FALSE(FaultPlan::Parse("slow@factor=fast").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash@turbo=1").ok());
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  const std::string text =
      "crash@worker=3,stage=join_1;err@attempt=*;slow@worker=2,factor=8;"
      "drop@x=0,p=1,c=2;dup@p=4,label=HCS R(x, y)";
  auto plan = FaultPlan::Parse(text);
  ASSERT_TRUE(plan.ok());
  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToString(), plan->ToString());
}

TEST(FaultPlanTest, RandomIsDeterministicPerSeed) {
  FaultPlan a = FaultPlan::Random(7, 5, 16);
  FaultPlan b = FaultPlan::Random(7, 5, 16);
  FaultPlan c = FaultPlan::Random(8, 5, 16);
  ASSERT_EQ(a.specs.size(), 5u);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString(), c.ToString());
  // The grammar's `rand` event expands to the same schedule.
  auto parsed = FaultPlan::Parse("rand@n=5,seed=7,workers=16");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), a.ToString());
  // Random schedules are recoverable by construction: single-attempt
  // faults only, never persistent, never stragglers.
  for (const FaultSpec& spec : a.specs) {
    EXPECT_EQ(spec.attempt, 0) << spec.ToString();
    EXPECT_NE(spec.kind, FaultKind::kStragglerDelay) << spec.ToString();
  }
}

// ---------------------------------------------------------------------------
// FaultInjector matching.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, ResetRestartsSiteNumbering) {
  FaultInjector injector(FaultPlan{});
  EXPECT_EQ(injector.RegisterStage("a"), 0);
  EXPECT_EQ(injector.RegisterStage("b"), 1);
  EXPECT_EQ(injector.RegisterExchange("x"), 0);
  injector.Reset();
  EXPECT_EQ(injector.RegisterStage("a"), 0);
  EXPECT_EQ(injector.RegisterExchange("x"), 0);
}

TEST(FaultInjectorTest, DropWinsOverDuplicateOnTheSameChannel) {
  auto plan = FaultPlan::Parse("dup@p=0;drop@p=0");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(std::move(plan).value());
  EXPECT_EQ(injector.OnChannel(0, "x", 0, 0, 0),
            FaultInjector::ChannelFault::kDrop);
  EXPECT_EQ(injector.OnChannel(0, "x", 1, 0, 0),
            FaultInjector::ChannelFault::kNone);
}

TEST(FaultInjectorTest, StageMatchingRespectsEveryField) {
  auto plan = FaultPlan::Parse("crash@worker=3,attempt=1,stage=join_1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(std::move(plan).value());
  EXPECT_TRUE(injector.OnStage(0, "join_1", 3, 1).crash_before);
  EXPECT_FALSE(injector.OnStage(0, "join_2", 3, 1).any());  // label
  EXPECT_FALSE(injector.OnStage(0, "join_1", 4, 1).any());  // worker
  EXPECT_FALSE(injector.OnStage(0, "join_1", 3, 0).any());  // attempt
  EXPECT_EQ(injector.injected(), 1u);
}

TEST(RecoveryTest, InternalIsRetryableOnlyUnderAnInjector) {
  const Status internal = Status::Internal("conservation violated");
  EXPECT_FALSE(IsRetryableFailure(internal));
  FaultInjector injector(FaultPlan{});
  FaultInjector* prev = SetActiveFaultInjector(&injector);
  EXPECT_TRUE(IsRetryableFailure(internal));
  EXPECT_TRUE(IsRetryableFailure(Status::Unavailable("crash")));
  EXPECT_FALSE(IsRetryableFailure(Status::ResourceExhausted("budget")));
  SetActiveFaultInjector(prev);
  // kUnavailable is always retryable; it only originates from injection.
  EXPECT_TRUE(IsRetryableFailure(Status::Unavailable("crash")));
}

// ---------------------------------------------------------------------------
// Shuffle-level faults: conservation invariant and sequence-tag dedup.
// ---------------------------------------------------------------------------

TEST(ShuffleFaultTest, DroppedChannelTripsConservationInvariant) {
  Rng rng(3);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 300, 40, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, 8);

  auto plan = FaultPlan::Parse("drop@attempt=*");  // every channel, always
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(std::move(plan).value());
  FaultInjector* prev = SetActiveFaultInjector(&injector);
  Result<ShuffleResult> r = HashShuffle(dist, {0}, 8, 7, "lossy");
  SetActiveFaultInjector(prev);

  // The invariant reports the loss as a Status, never a crash.
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().ToString().find("conservation"), std::string::npos)
      << r.status().ToString();
}

TEST(ShuffleFaultTest, DuplicatedChannelIsDedupedBySequenceTag) {
  Rng rng(4);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 300, 40, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, 8);
  ShuffleResult clean = HashShuffle(dist, {0}, 8, 7, "t").value();

  auto plan = FaultPlan::Parse("dup@p=0;dup@p=3");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(std::move(plan).value());
  FaultInjector* prev = SetActiveFaultInjector(&injector);
  Result<ShuffleResult> r = HashShuffle(dist, {0}, 8, 7, "t");
  SetActiveFaultInjector(prev);

  // Both copies carry the same (producer, epoch) tag; the consumer keeps
  // the first and the merged fragments are bit-identical to the clean run.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->data.size(), clean.data.size());
  for (size_t w = 0; w < clean.data.size(); ++w) {
    EXPECT_EQ(r->data[w].data(), clean.data[w].data()) << "worker " << w;
  }
  EXPECT_EQ(r->metrics.tuples_sent, clean.metrics.tuples_sent);
  EXPECT_EQ(r->metrics.dups_deduped, 16u);  // 2 producers x 8 consumers
}

// ---------------------------------------------------------------------------
// End-to-end recovery across the full strategy matrix.
// ---------------------------------------------------------------------------

struct RunRecord {
  StrategyResult result;
  std::vector<std::pair<std::string, uint64_t>> counters;
  uint64_t injected = 0;
};

RunRecord RunWith(int threads, const NormalizedQuery& q, ShuffleKind shuffle,
                  JoinKind join, const StrategyOptions& opts,
                  const std::string& faults = "") {
  runtime::SetThreads(threads);
  CounterRegistry registry;
  CounterRegistry* prev_reg = SetActiveCounterRegistry(&registry);
  FaultInjector* prev_inj = nullptr;
  std::unique_ptr<FaultInjector> injector;
  if (!faults.empty()) {
    auto plan = FaultPlan::Parse(faults);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    injector = std::make_unique<FaultInjector>(std::move(plan).value());
    prev_inj = SetActiveFaultInjector(injector.get());
  }
  auto result = RunStrategy(q, shuffle, join, opts);
  if (injector != nullptr) SetActiveFaultInjector(prev_inj);
  SetActiveCounterRegistry(prev_reg);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunRecord record;
  record.result = std::move(result).value();
  record.counters = registry.CounterSnapshot();
  if (injector != nullptr) record.injected = injector->injected();
  runtime::SetThreads(0);
  return record;
}

size_t TotalRetries(const QueryMetrics& m) {
  size_t total = 0;
  for (const StageMetrics& s : m.stages) total += s.retries;
  for (const ShuffleMetrics& s : m.shuffles) total += s.retries;
  return total;
}

// Recoverable schedules: every stage loses worker 3 once; the second also
// loses one channel of the first exchange and duplicates another.
const char* kSingleFault = "crash@worker=3";
const char* kTwoFaults = "crash@worker=5;drop@x=0,p=1,c=2;dup@x=0,p=0";

class FaultMatrix : public ::testing::TestWithParam<int> {
  void TearDown() override { runtime::SetThreads(0); }
};

TEST_P(FaultMatrix, RecoveredRunsMatchFaultFreeRuns) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(GetParam());
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();

  StrategyOptions opts;
  opts.num_workers = 16;

  for (const auto& [shuffle, join] : AllStrategies()) {
    const std::string name = StrategyName(shuffle, join);
    RunRecord clean = RunWith(1, wl->normalized, shuffle, join, opts);
    for (const char* schedule : {kSingleFault, kTwoFaults}) {
      const std::string context =
          wl->id + " " + name + " [" + schedule + "]";
      RunRecord faulted = RunWith(8, wl->normalized, shuffle, join, opts,
                                  schedule);
      const QueryMetrics& fm = faulted.result.metrics;

      // Faults fired and were retried...
      EXPECT_GT(faulted.injected, 0u) << context;
      EXPECT_GE(TotalRetries(fm), 1u) << context;
      EXPECT_GT(fm.backoff_seconds, 0.0) << context;
      EXPECT_TRUE(fm.degradations.empty()) << context;

      // ...and the recovered run converges to the fault-free answer:
      // bit-identical gathered output, identical tuple movement.
      EXPECT_FALSE(fm.failed) << context << ": " << fm.fail_reason;
      EXPECT_EQ(faulted.result.output.data(), clean.result.output.data())
          << context << ": recovered output differs from fault-free run";
      const QueryMetrics& cm = clean.result.metrics;
      ASSERT_EQ(fm.shuffles.size(), cm.shuffles.size()) << context;
      for (size_t i = 0; i < cm.shuffles.size(); ++i) {
        EXPECT_EQ(fm.shuffles[i].label, cm.shuffles[i].label) << context;
        EXPECT_EQ(fm.shuffles[i].tuples_sent, cm.shuffles[i].tuples_sent)
            << context << ": shuffle " << cm.shuffles[i].label;
      }

      // Recovery is deterministic: a 1-thread replay of the same schedule
      // is indistinguishable, counters included.
      RunRecord serial = RunWith(1, wl->normalized, shuffle, join, opts,
                                 schedule);
      EXPECT_EQ(serial.result.output.data(), faulted.result.output.data())
          << context << ": recovery diverges across thread counts";
      EXPECT_EQ(serial.injected, faulted.injected) << context;
      EXPECT_EQ(TotalRetries(serial.result.metrics), TotalRetries(fm))
          << context;
      EXPECT_EQ(serial.counters, faulted.counters) << context;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Q1toQ8, FaultMatrix, ::testing::Range(1, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Retry accounting.
// ---------------------------------------------------------------------------

TEST(RecoveryAccountingTest, BackoffIsExponentialInTheAttemptNumber) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok());

  StrategyOptions opts;
  opts.num_workers = 16;
  opts.recovery.backoff_base_seconds = 0.125;

  // Every stage fails its first two attempts and succeeds on the third:
  // retries = 2 per stage, booked backoff = base * (2^2 - 1) per stage.
  RunRecord r = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                        JoinKind::kHashJoin, opts, "err@attempt=0;err@attempt=1");
  const QueryMetrics& m = r.result.metrics;
  EXPECT_FALSE(m.failed) << m.fail_reason;
  double expected = 0.0;
  size_t retried_stages = 0;
  for (const StageMetrics& s : m.stages) {
    if (s.retries == 0) continue;
    EXPECT_EQ(s.retries, 2u) << s.label;
    ++retried_stages;
    expected += 0.125 * static_cast<double>((1 << s.retries) - 1);
  }
  EXPECT_GE(retried_stages, 1u);
  EXPECT_NEAR(m.backoff_seconds, expected, 1e-12);
  // wall clock includes the virtual backoff delay.
  EXPECT_GE(m.wall_seconds, m.backoff_seconds);

  // Counter accounting matches: one retry.attempts per booked retry.
  uint64_t retry_attempts = 0;
  for (const auto& [name, value] : r.counters) {
    if (name == "retry.attempts") retry_attempts = value;
  }
  EXPECT_EQ(retry_attempts, 2u * retried_stages);
}

TEST(RecoveryAccountingTest, StragglerDelayInflatesCostWithoutRetries) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok());

  StrategyOptions opts;
  opts.num_workers = 16;
  RunRecord clean = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                            JoinKind::kHashJoin, opts);
  RunRecord slow = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                           JoinKind::kHashJoin, opts, "slow@worker=2,factor=8");

  // A straggler changes the bill, never the data or the retry count.
  EXPECT_GT(slow.injected, 0u);
  EXPECT_EQ(TotalRetries(slow.result.metrics), 0u);
  EXPECT_DOUBLE_EQ(slow.result.metrics.backoff_seconds, 0.0);
  EXPECT_EQ(slow.result.output.data(), clean.result.output.data());
  uint64_t slow_faults = 0;
  for (const auto& [name, value] : slow.counters) {
    if (name == "fault.slow") slow_faults = value;
  }
  EXPECT_GT(slow_faults, 0u);
}

// ---------------------------------------------------------------------------
// Graceful degradation: persistent faults force a cheaper plan, not an abort.
// ---------------------------------------------------------------------------

TEST(DegradationTest, LocalTributaryPhaseFallsBackToHashJoin) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok());

  StrategyOptions opts;
  opts.num_workers = 16;
  RunRecord clean = RunWith(1, wl->normalized, ShuffleKind::kBroadcast,
                            JoinKind::kTributary, opts);
  // The TJ phase errors on every attempt; the HJ fallback registers a fresh
  // fault site under a new label, out of this spec's reach.
  RunRecord degraded = RunWith(1, wl->normalized, ShuffleKind::kBroadcast,
                               JoinKind::kTributary, opts,
                               "err@attempt=*,stage=local TJ");

  const QueryMetrics& m = degraded.result.metrics;
  EXPECT_FALSE(m.failed) << m.fail_reason;
  ASSERT_EQ(m.degradations.size(), 1u);
  EXPECT_EQ(m.degradations[0], "local phase: tributary join -> hash join");
  bool saw_abandoned = false, saw_fallback = false;
  for (const StageMetrics& s : m.stages) {
    if (s.label == "local TJ") {
      saw_abandoned = true;
      EXPECT_TRUE(s.degraded);
      EXPECT_EQ(s.retries, 3u);  // default max_retries, all exhausted
    }
    if (s.label == "local TJ (degraded to HJ)") {
      saw_fallback = true;
      EXPECT_FALSE(s.degraded);
      EXPECT_EQ(s.retries, 0u);
    }
  }
  EXPECT_TRUE(saw_abandoned);
  EXPECT_TRUE(saw_fallback);
  // The degraded plan computes the same query.
  EXPECT_TRUE(degraded.result.output.EqualsUnordered(clean.result.output));

  // EXPLAIN ANALYZE surfaces the recovery story.
  ExplainOptions eo;
  eo.include_timings = false;
  const std::string text =
      ExplainAnalyzeText("BR_TJ", degraded.result, eo);
  EXPECT_NE(text.find("DEGRADED: local phase"), std::string::npos) << text;
  EXPECT_NE(text.find("local TJ (degraded to HJ)"), std::string::npos)
      << text;
}

TEST(DegradationTest, TributaryRoundFallsBackToHashJoin) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok());

  StrategyOptions opts;
  opts.num_workers = 16;
  RunRecord clean = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                            JoinKind::kTributary, opts);
  RunRecord degraded = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                               JoinKind::kTributary, opts,
                               "err@attempt=*,stage=join_1");

  const QueryMetrics& m = degraded.result.metrics;
  EXPECT_FALSE(m.failed) << m.fail_reason;
  ASSERT_EQ(m.degradations.size(), 1u);
  EXPECT_EQ(m.degradations[0], "join_1: tributary join -> hash join");
  bool saw_fallback = false;
  for (const StageMetrics& s : m.stages) {
    if (s.label == "join_1 (degraded to HJ)") saw_fallback = true;
  }
  EXPECT_TRUE(saw_fallback);
  EXPECT_TRUE(degraded.result.output.EqualsUnordered(clean.result.output));
}

TEST(DegradationTest, HypercubeShuffleFallsBackToRegularShuffle) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok());

  StrategyOptions opts;
  opts.num_workers = 16;
  RunRecord clean = RunWith(1, wl->normalized, ShuffleKind::kHypercube,
                            JoinKind::kHashJoin, opts);
  // Exchange site 0 (the first HCS shuffle) loses every channel on every
  // attempt. The regular-shuffle fallback's exchanges register later
  // ordinals, so the spec cannot touch them.
  RunRecord degraded = RunWith(1, wl->normalized, ShuffleKind::kHypercube,
                               JoinKind::kHashJoin, opts,
                               "drop@x=0,attempt=*");

  const QueryMetrics& m = degraded.result.metrics;
  EXPECT_FALSE(m.failed) << m.fail_reason;
  ASSERT_EQ(m.degradations.size(), 1u);
  EXPECT_NE(m.degradations[0].find("hypercube shuffle -> regular hash"),
            std::string::npos);
  // The HC configuration that was attempted stays reported.
  EXPECT_FALSE(degraded.result.hc_config.dims.empty());
  EXPECT_TRUE(degraded.result.output.EqualsUnordered(clean.result.output));
}

TEST(DegradationTest, PersistentWildcardCrashFailsGracefully) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok());

  StrategyOptions opts;
  opts.num_workers = 16;
  // Every worker of every stage crashes on every attempt — even the
  // degradation fallbacks. No plan survives; the run must FAIL gracefully
  // (a data point, like budget exhaustion), never return an error Status.
  for (const auto& [shuffle, join] : AllStrategies()) {
    RunRecord r = RunWith(1, wl->normalized, shuffle, join, opts,
                          "crash@attempt=*");
    const std::string name = StrategyName(shuffle, join);
    EXPECT_TRUE(r.result.metrics.failed) << name;
    EXPECT_NE(r.result.metrics.fail_reason.find("retries"),
              std::string::npos)
        << name << ": " << r.result.metrics.fail_reason;
    EXPECT_EQ(r.result.output.NumTuples(), 0u) << name;
    uint64_t exhausted = 0;
    for (const auto& [cname, value] : r.counters) {
      if (cname == "retry.exhausted") exhausted = value;
    }
    EXPECT_GE(exhausted, 1u) << name;
  }
}

// ---------------------------------------------------------------------------
// Semijoin plan recovery.
// ---------------------------------------------------------------------------

TEST(SemijoinRecoveryTest, ExchangeRetriesConvergeToFaultFreeResult) {
  WorkloadFactory factory(TinyScale());
  StrategyOptions opts;
  opts.num_workers = 16;
  for (int qn = 1; qn <= 8; ++qn) {
    auto wl = factory.Make(qn);
    ASSERT_TRUE(wl.ok());
    if (wl->cyclic) continue;

    auto clean = RunSemijoinPlan(wl->query, wl->normalized, opts, nullptr);
    ASSERT_TRUE(clean.ok()) << wl->id;

    auto plan = FaultPlan::Parse("drop@p=0,c=0");
    ASSERT_TRUE(plan.ok());
    FaultInjector injector(std::move(plan).value());
    FaultInjector* prev = SetActiveFaultInjector(&injector);
    auto faulted = RunSemijoinPlan(wl->query, wl->normalized, opts, nullptr);
    SetActiveFaultInjector(prev);

    ASSERT_TRUE(faulted.ok()) << wl->id << ": " << faulted.status().ToString();
    EXPECT_FALSE(faulted->metrics.failed)
        << wl->id << ": " << faulted->metrics.fail_reason;
    EXPECT_EQ(faulted->output.data(), clean->output.data()) << wl->id;
    EXPECT_GE(TotalRetries(faulted->metrics), 1u) << wl->id;
  }
}

}  // namespace
}  // namespace ptp
