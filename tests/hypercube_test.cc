#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "hypercube/cell_allocation.h"
#include "hypercube/config.h"
#include "hypercube/optimizer.h"

namespace ptp {
namespace {

ShareProblem TriangleProblem(double m1, double m2, double m3) {
  ShareProblem p;
  p.join_vars = {"x", "y", "z"};
  p.atoms = {{"S1", {0, 1}, m1}, {"S2", {1, 2}, m2}, {"S3", {2, 0}, m3}};
  return p;
}

TEST(HypercubeConfigTest, CellCoordRoundTrip) {
  HypercubeConfig config;
  config.join_vars = {"x", "y", "z"};
  config.dims = {2, 3, 4};
  EXPECT_EQ(config.NumCells(), 24);
  for (int cell = 0; cell < 24; ++cell) {
    EXPECT_EQ(config.CoordsToCell(config.CellToCoords(cell)), cell);
  }
  EXPECT_EQ(config.CellToCoords(0), (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(config.CellToCoords(23), (std::vector<int>{1, 2, 3}));
}

TEST(HypercubeRouterTest, BoundTupleGoesToReplicatedCells) {
  HypercubeConfig config;
  config.join_vars = {"x", "y", "z"};
  config.dims = {2, 2, 3};
  // Atom R(x, y): z unbound -> replication factor 3.
  HypercubeRouter router(config, {"x", "y"});
  EXPECT_EQ(router.ReplicationFactor(), 3);
  Value tuple[] = {77, 13};
  std::vector<int> cells;
  router.Route(tuple, &cells);
  ASSERT_EQ(cells.size(), 3u);
  // All three destinations agree on the x/y coordinates and differ in z.
  std::set<int> zs;
  auto c0 = config.CellToCoords(cells[0]);
  for (int cell : cells) {
    auto c = config.CellToCoords(cell);
    EXPECT_EQ(c[0], c0[0]);
    EXPECT_EQ(c[1], c0[1]);
    zs.insert(c[2]);
  }
  EXPECT_EQ(zs.size(), 3u);
}

TEST(HypercubeRouterTest, FullyBoundTupleGoesToOneCell) {
  HypercubeConfig config;
  config.join_vars = {"x", "y"};
  config.dims = {4, 4};
  HypercubeRouter router(config, {"x", "y"});
  EXPECT_EQ(router.ReplicationFactor(), 1);
  Value tuple[] = {5, 6};
  std::vector<int> cells;
  router.Route(tuple, &cells);
  EXPECT_EQ(cells.size(), 1u);
}

TEST(HypercubeRouterTest, RoutingIsDeterministic) {
  HypercubeConfig config;
  config.join_vars = {"x", "y", "z"};
  config.dims = {2, 4, 2};
  HypercubeRouter router(config, {"y", "z"});
  Value tuple[] = {123, 456};
  std::vector<int> a, b;
  router.Route(tuple, &a);
  router.Route(tuple, &b);
  EXPECT_EQ(a, b);
}

// The key HyperCube correctness property: any combination of atom tuples
// that agrees on the join variables meets on at least one common cell.
TEST(HypercubeRouterTest, JoiningTuplesMeetOnACell) {
  HypercubeConfig config;
  config.join_vars = {"x", "y", "z"};
  config.dims = {3, 2, 4};
  HypercubeRouter r_router(config, {"x", "y"});
  HypercubeRouter s_router(config, {"y", "z"});
  HypercubeRouter t_router(config, {"z", "x"});
  for (Value x = 0; x < 5; ++x) {
    for (Value y = 0; y < 5; ++y) {
      for (Value z = 0; z < 5; ++z) {
        Value r[] = {x, y}, s[] = {y, z}, t[] = {z, x};
        std::vector<int> rc, sc, tc;
        r_router.Route(r, &rc);
        s_router.Route(s, &sc);
        t_router.Route(t, &tc);
        std::sort(rc.begin(), rc.end());
        std::sort(sc.begin(), sc.end());
        std::sort(tc.begin(), tc.end());
        std::vector<int> rs, rst;
        std::set_intersection(rc.begin(), rc.end(), sc.begin(), sc.end(),
                              std::back_inserter(rs));
        std::set_intersection(rs.begin(), rs.end(), tc.begin(), tc.end(),
                              std::back_inserter(rst));
        EXPECT_EQ(rst.size(), 1u) << "x=" << x << " y=" << y << " z=" << z;
      }
    }
  }
}

TEST(OptimizerTest, SymmetricTriangleOn64Gets4x4x4) {
  ConfigChoice c = OptimizeShares(TriangleProblem(1e6, 1e6, 1e6), 64);
  EXPECT_EQ(c.config.dims, (std::vector<int>{4, 4, 4}));
  EXPECT_EQ(c.cells_used, 64);
  EXPECT_NEAR(c.expected_load, 3e6 / 16.0, 1e-6);
}

TEST(OptimizerTest, TriangleOn63UsesNonTrivialConfig) {
  // The paper's motivating example: rounding 63^(1/3) down to 3x3x3 wastes
  // workers (0.33m); Algorithm 1 must find something strictly better.
  ConfigChoice ours = OptimizeShares(TriangleProblem(1e6, 1e6, 1e6), 63);
  auto down = RoundDownShares(TriangleProblem(1e6, 1e6, 1e6), 63);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->config.dims, (std::vector<int>{3, 3, 3}));
  EXPECT_LT(ours.expected_load, down->expected_load);
  EXPECT_LE(ours.config.NumCells(), 63);
}

TEST(OptimizerTest, SkewedSizesBroadcastSmallRelation) {
  // |S1| tiny: optimal integral config concentrates shares on z (the
  // variable joining the two big relations) — dims (1, 1, p).
  ConfigChoice c = OptimizeShares(TriangleProblem(10, 1e6, 1e6), 64);
  EXPECT_EQ(c.config.dims[0], 1);
  EXPECT_EQ(c.config.dims[1], 1);
  EXPECT_EQ(c.config.dims[2], 64);
}

TEST(OptimizerTest, EvenTiebreakPrefersSquareConfig) {
  // Two variables, symmetric: 8x8 beats 4x16 / 64x1 at equal-ish load.
  ShareProblem p;
  p.join_vars = {"x", "y"};
  p.atoms = {{"A", {0}, 1e6}, {"B", {0, 1}, 1e6}, {"C", {1}, 1e6}};
  ConfigChoice with_tiebreak = OptimizeShares(p, 64);
  EXPECT_EQ(std::max(with_tiebreak.config.dims[0],
                     with_tiebreak.config.dims[1]),
            8);
}

TEST(OptimizerTest, NeverExceedsWorkerBudget) {
  for (int n : {1, 2, 7, 15, 63, 64, 65}) {
    ConfigChoice c = OptimizeShares(TriangleProblem(3e5, 1e6, 7e5), n);
    EXPECT_LE(c.config.NumCells(), n);
    EXPECT_GE(c.config.NumCells(), 1);
  }
}

TEST(OptimizerTest, OurAlgorithmNeverWorseThanRoundDown) {
  for (int n : {5, 12, 15, 31, 63, 64, 100}) {
    for (double skew : {1.0, 3.0, 10.0}) {
      ShareProblem p = TriangleProblem(1e6, 1e6 * skew, 1e6);
      ConfigChoice ours = OptimizeShares(p, n);
      auto down = RoundDownShares(p, n);
      ASSERT_TRUE(down.ok());
      EXPECT_LE(ours.expected_load, down->expected_load * (1 + 1e-9))
          << "n=" << n << " skew=" << skew;
    }
  }
}

TEST(OptimizerTest, CountIntegralConfigsMatchesBruteForce) {
  // k=2, N=6: pairs (a,b) with a*b <= 6:
  // a=1: b 1..6 (6); a=2: b 1..3 (3); a=3: 1..2 (2); a=4,5,6: 1 each (3).
  EXPECT_EQ(CountIntegralConfigs(2, 6), 14);
  EXPECT_EQ(CountIntegralConfigs(1, 10), 10);
  EXPECT_EQ(CountIntegralConfigs(0, 10), 1);
}

TEST(CellAllocationTest, RandomAllocationIsBalancedAndComplete) {
  ShareProblem p = TriangleProblem(1e6, 1e6, 1e6);
  auto alloc = RandomCellAllocation(p, 4, 64, /*seed=*/3);
  ASSERT_TRUE(alloc.ok()) << alloc.status().ToString();
  const int m = alloc->config.NumCells();
  EXPECT_GT(m, 4);
  std::vector<int> counts(4, 0);
  for (int w : alloc->worker_of_cell) {
    ASSERT_GE(w, 0);
    ASSERT_LT(w, 4);
    ++counts[static_cast<size_t>(w)];
  }
  const int max_count = *std::max_element(counts.begin(), counts.end());
  const int min_count = *std::min_element(counts.begin(), counts.end());
  EXPECT_LE(max_count - min_count, 1);
}

TEST(CellAllocationTest, RandomAllocationInflatesLoadVersusOneCellPerWorker) {
  // App. B: random placement forces each worker to receive a large part of
  // the replicated relations.
  ShareProblem p = TriangleProblem(1e6, 1e6, 1e6);
  ConfigChoice ours = OptimizeShares(p, 64);
  auto random = RandomCellAllocation(p, 64, 4096, /*seed=*/5);
  ASSERT_TRUE(random.ok());
  const double random_load = AllocationMaxLoad(p, *random);
  EXPECT_GT(random_load, ours.expected_load * 1.5);
}

TEST(CellAllocationTest, OptimalAllocationRefusesLargeInstances) {
  ShareProblem p = TriangleProblem(100, 100, 100);
  HypercubeConfig config;
  config.join_vars = p.join_vars;
  config.dims = {4, 4, 4};
  auto result = OptimalCellAllocation(p, config, 8);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(CellAllocationTest, OptimalBeatsRandomOnTinyInstance) {
  ShareProblem p;
  p.join_vars = {"x", "y"};
  p.atoms = {{"R", {0}, 1000}, {"S", {0, 1}, 1000}, {"T", {1}, 1000}};
  HypercubeConfig config;
  config.join_vars = p.join_vars;
  config.dims = {2, 3};  // 6 cells onto 3 workers
  auto optimal = OptimalCellAllocation(p, config, 3);
  ASSERT_TRUE(optimal.ok()) << optimal.status().ToString();

  CellAllocation random;
  random.config = config;
  random.num_workers = 3;
  random.worker_of_cell = {0, 1, 2, 2, 0, 1};  // arbitrary scattered map
  EXPECT_LE(AllocationMaxLoad(p, *optimal),
            AllocationMaxLoad(p, random) + 1e-9);
}

TEST(CellAllocationTest, MaxLoadCountsDistinctSlabsOnce) {
  // One worker owning two cells in the same R-slab receives R's slab once.
  ShareProblem p;
  p.join_vars = {"x", "y"};
  p.atoms = {{"R", {0}, 100.0}};  // bound dims: x only
  CellAllocation alloc;
  alloc.config.join_vars = p.join_vars;
  alloc.config.dims = {2, 2};
  alloc.num_workers = 2;
  // Worker 0 owns cells (0,0) and (0,1): same x-slab -> load 50.
  // Worker 1 owns cells (1,0) and (1,1): load 50.
  alloc.worker_of_cell = {0, 0, 1, 1};
  EXPECT_NEAR(AllocationMaxLoad(p, alloc), 50.0, 1e-9);
  // Scattered: each worker sees both x-slabs -> load 100.
  alloc.worker_of_cell = {0, 1, 1, 0};
  EXPECT_NEAR(AllocationMaxLoad(p, alloc), 100.0, 1e-9);
}

}  // namespace
}  // namespace ptp
