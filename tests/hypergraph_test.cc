#include "query/hypergraph.h"

#include "gtest/gtest.h"
#include "query/parser.h"

namespace ptp {
namespace {

Hypergraph FromEdges(std::vector<std::vector<std::string>> edges) {
  return Hypergraph(std::move(edges));
}

TEST(HypergraphTest, PathIsAcyclic) {
  EXPECT_TRUE(FromEdges({{"x", "y"}, {"y", "z"}, {"z", "w"}}).IsAcyclic());
}

TEST(HypergraphTest, TriangleIsCyclic) {
  EXPECT_FALSE(FromEdges({{"x", "y"}, {"y", "z"}, {"z", "x"}}).IsAcyclic());
}

TEST(HypergraphTest, StarIsAcyclic) {
  EXPECT_TRUE(
      FromEdges({{"h", "a"}, {"h", "b"}, {"h", "c"}, {"h", "d"}}).IsAcyclic());
}

TEST(HypergraphTest, TriangleCoveredByBigEdgeIsAcyclic) {
  // Alpha-acyclicity: adding the covering edge {x,y,z} makes it acyclic.
  EXPECT_TRUE(
      FromEdges({{"x", "y"}, {"y", "z"}, {"z", "x"}, {"x", "y", "z"}})
          .IsAcyclic());
}

TEST(HypergraphTest, FourCycleIsCyclic) {
  EXPECT_FALSE(
      FromEdges({{"x", "y"}, {"y", "z"}, {"z", "p"}, {"p", "x"}}).IsAcyclic());
}

TEST(HypergraphTest, SingleEdgeIsAcyclic) {
  EXPECT_TRUE(FromEdges({{"x", "y", "z"}}).IsAcyclic());
}

TEST(HypergraphTest, DisconnectedAcyclicComponents) {
  EXPECT_TRUE(FromEdges({{"x", "y"}, {"a", "b"}}).IsAcyclic());
}

TEST(HypergraphTest, PaperQueryCyclicityMatchesTable6) {
  struct Case {
    const char* text;
    bool cyclic;
  };
  const Case cases[] = {
      // Q1 triangle: cyclic.
      {"T(x,y,z) :- R(x,y), S(y,z), U(z,x).", true},
      // Q5 rectangle: cyclic.
      {"T(x,y,z,p) :- R(x,y), S(y,z), U(z,p), K(p,x).", true},
      // Q2 4-clique: cyclic.
      {"T(x,y,z,p) :- R(x,y), S(y,z), U(z,p), P(p,x), K(x,z), L(y,p).", true},
      // Q7 star with a dangling branch: acyclic.
      {"T(a) :- N(aw), HA(h,aw), HC(h,a), HY(h,y).", false},
      // Q8 actor-director: cyclic.
      {"T(a,d) :- AP1(a,p1), AP2(a,p2), PF1(p1,f1), PF2(p2,f2), DF1(d,f1), "
       "DF2(d,f2).",
       true},
  };
  for (const Case& c : cases) {
    auto q = ParseDatalog(c.text, nullptr);
    ASSERT_TRUE(q.ok()) << c.text;
    EXPECT_EQ(!Hypergraph(*q).IsAcyclic(), c.cyclic) << c.text;
  }
}

TEST(JoinTreeTest, PathQueryYieldsChain) {
  auto q = ParseDatalog("Q(x,w) :- R(x,y), S(y,z), U(z,w).", nullptr);
  ASSERT_TRUE(q.ok());
  auto tree = BuildJoinTree(*q);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->parent.size(), 3u);
  // Exactly one root; every non-root's parent is a valid index.
  int roots = 0;
  for (size_t i = 0; i < tree->parent.size(); ++i) {
    if (tree->parent[i] < 0) {
      ++roots;
      EXPECT_EQ(static_cast<int>(i), tree->root);
    } else {
      EXPECT_LT(tree->parent[i], 3);
    }
  }
  EXPECT_EQ(roots, 1);
  // bottom_up_order covers all nodes, children before parents.
  EXPECT_EQ(tree->bottom_up_order.size(), 3u);
  std::vector<bool> seen(3, false);
  for (int node : tree->bottom_up_order) {
    for (int child : tree->children[static_cast<size_t>(node)]) {
      EXPECT_TRUE(seen[static_cast<size_t>(child)]);
    }
    seen[static_cast<size_t>(node)] = true;
  }
}

TEST(JoinTreeTest, CyclicQueryIsRejected) {
  auto q = ParseDatalog("T(x,y,z) :- R(x,y), S(y,z), U(z,x).", nullptr);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(BuildJoinTree(*q).ok());
}

TEST(JoinTreeTest, Q7StarTree) {
  // GHD of Q7 (paper Figure 16): HonorAward is the hub.
  auto q = ParseDatalog(
      "T(a) :- N(aw), HA(h,aw), HC(h,a), HY(h,y).", nullptr);
  ASSERT_TRUE(q.ok());
  auto tree = BuildJoinTree(*q);
  ASSERT_TRUE(tree.ok());
  // Atom 1 (HA) shares vars with all others; it must be an ancestor of all.
  // (The precise shape can vary, but the tree must be connected & rooted.)
  EXPECT_GE(tree->root, 0);
}

}  // namespace
}  // namespace ptp
