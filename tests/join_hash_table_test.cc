// Unit and fuzz coverage for the flat join-kernel hash structures:
// JoinHashTable (the local-join build/probe kernel) and FlatCounter (the
// skew/advisor frequency map). The fuzz tests pin behaviour against the
// standard-library containers the kernels replaced.

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "exec/join_hash_table.h"
#include "gtest/gtest.h"

namespace ptp {
namespace {

std::vector<uint32_t> Matches(const JoinHashTable& table, uint64_t hash) {
  std::vector<uint32_t> rows;
  for (uint32_t e = table.Find(hash); e != JoinHashTable::kNil;
       e = table.Next(e, hash)) {
    rows.push_back(table.Row(e));
  }
  return rows;
}

TEST(JoinHashTable, EmptyFindsNothing) {
  JoinHashTable table;
  EXPECT_EQ(table.Find(42), JoinHashTable::kNil);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.probes(), 1u);
  EXPECT_EQ(table.probe_hits(), 0u);
}

TEST(JoinHashTable, InsertAndProbe) {
  JoinHashTable table;
  table.Insert(/*hash=*/100, /*row=*/7);
  table.Insert(/*hash=*/200, /*row=*/9);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(Matches(table, 100), (std::vector<uint32_t>{7}));
  EXPECT_EQ(Matches(table, 200), (std::vector<uint32_t>{9}));
  EXPECT_TRUE(Matches(table, 300).empty());
  EXPECT_EQ(table.probes(), 3u);
  EXPECT_EQ(table.probe_hits(), 2u);
}

TEST(JoinHashTable, DuplicatesChainMostRecentFirst) {
  JoinHashTable table;
  table.Insert(5, 1);
  table.Insert(5, 2);
  table.Insert(5, 3);
  // LIFO chains: callers that need ascending row order insert in reverse.
  EXPECT_EQ(Matches(table, 5), (std::vector<uint32_t>{3, 2, 1}));
}

TEST(JoinHashTable, ReverseInsertionYieldsAscendingRows) {
  JoinHashTable table;
  for (uint32_t row = 3; row-- > 0;) table.Insert(5, row);
  EXPECT_EQ(Matches(table, 5), (std::vector<uint32_t>{0, 1, 2}));
}

TEST(JoinHashTable, CollidingTagsAndSlotsStaySeparate) {
  // Keys that agree in the directory index bits AND the 16-bit tag but are
  // different full hashes: chains may merge physically, but Find/Next filter
  // on the stored 64-bit hash, so logical match lists stay exact.
  const uint64_t kA = 0xabcd000000000010ull;
  const uint64_t kB = 0xabcd000000000010ull ^ (1ull << 20);  // same tag+low bits
  JoinHashTable table;
  table.Insert(kA, 1);
  table.Insert(kB, 2);
  table.Insert(kA, 3);
  EXPECT_EQ(Matches(table, kA), (std::vector<uint32_t>{3, 1}));
  EXPECT_EQ(Matches(table, kB), (std::vector<uint32_t>{2}));
}

TEST(JoinHashTable, GrowsFromUnreserved) {
  JoinHashTable table;  // no Reserve: every growth path exercised
  const size_t kN = 10000;
  for (size_t i = 0; i < kN; ++i) {
    table.Insert(/*hash=*/i * 2654435761u, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(table.size(), kN);
  EXPECT_GE(table.capacity(), kN);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(Matches(table, i * 2654435761u),
              (std::vector<uint32_t>{static_cast<uint32_t>(i)}))
        << "key " << i;
  }
}

TEST(JoinHashTable, ReserveAvoidsRehash) {
  JoinHashTable table(/*expected_entries=*/1000);
  const size_t cap = table.capacity();
  for (size_t i = 0; i < 1000; ++i) {
    table.Insert(i * 0x9e3779b97f4a7c15ull, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(table.capacity(), cap) << "Reserve(n) then n inserts rehashed";
}

TEST(JoinHashTable, FuzzAgainstUnorderedMultimap) {
  std::mt19937_64 rng(20150531);
  for (int trial = 0; trial < 20; ++trial) {
    JoinHashTable table;
    std::unordered_multimap<uint64_t, uint32_t> reference;
    // Small key universe so duplicates and probe misses are both common;
    // low-entropy keys also stress tag/slot collisions.
    std::uniform_int_distribution<uint64_t> key_dist(0, 500);
    const int n = 1 + static_cast<int>(rng() % 4000);
    for (int i = 0; i < n; ++i) {
      const uint64_t key = key_dist(rng) * (trial % 2 ? 1ull : (1ull << 52));
      const uint32_t row = static_cast<uint32_t>(i);
      table.Insert(key, row);
      reference.emplace(key, row);
    }
    ASSERT_EQ(table.size(), reference.size());
    for (uint64_t k = 0; k <= 500; ++k) {
      const uint64_t key = k * (trial % 2 ? 1ull : (1ull << 52));
      std::vector<uint32_t> got = Matches(table, key);
      std::vector<uint32_t> want;
      auto [lo, hi] = reference.equal_range(key);
      for (auto it = lo; it != hi; ++it) want.push_back(it->second);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "trial " << trial << " key " << key;
    }
    EXPECT_LE(table.probe_hits(), table.probes());
  }
}

TEST(FlatCounter, AddAndCount) {
  FlatCounter counter;
  EXPECT_EQ(counter.Count(7), 0u);
  EXPECT_EQ(counter.Add(7, 1), 1u);
  EXPECT_EQ(counter.Add(7, 2), 3u);
  EXPECT_EQ(counter.Add(9, 5), 5u);
  EXPECT_EQ(counter.Count(7), 3u);
  EXPECT_EQ(counter.Count(9), 5u);
  EXPECT_EQ(counter.Count(8), 0u);
  EXPECT_EQ(counter.size(), 2u);
}

TEST(FlatCounter, IteratesInFirstInsertionOrder) {
  FlatCounter counter;
  counter.Add(30, 1);
  counter.Add(10, 1);
  counter.Add(20, 1);
  counter.Add(10, 1);
  EXPECT_EQ(counter.keys(), (std::vector<uint64_t>{30, 10, 20}));
  EXPECT_EQ(counter.counts(), (std::vector<uint64_t>{1, 2, 1}));
}

TEST(FlatCounter, FuzzAgainstUnorderedMap) {
  std::mt19937_64 rng(424242);
  for (int trial = 0; trial < 10; ++trial) {
    FlatCounter counter;
    std::unordered_map<uint64_t, uint64_t> reference;
    std::uniform_int_distribution<uint64_t> key_dist(0, 300);
    const int n = 1 + static_cast<int>(rng() % 10000);
    for (int i = 0; i < n; ++i) {
      const uint64_t key = key_dist(rng);
      const uint64_t delta = rng() % 5;
      const uint64_t got = counter.Add(key, delta);
      const uint64_t want = (reference[key] += delta);
      ASSERT_EQ(got, want);
    }
    ASSERT_EQ(counter.size(), reference.size());
    for (const auto& [key, count] : reference) {
      ASSERT_EQ(counter.Count(key), count) << "key " << key;
    }
  }
}

TEST(FlatCounter, GrowsFromUnreserved) {
  FlatCounter counter;
  const uint64_t kN = 50000;
  for (uint64_t i = 0; i < kN; ++i) counter.Add(i, i);
  ASSERT_EQ(counter.size(), kN);
  for (uint64_t i = 0; i < kN; i += 97) EXPECT_EQ(counter.Count(i), i);
}

}  // namespace
}  // namespace ptp
