// Query lifecycle robustness (docs/ROBUSTNESS.md): cooperative
// cancellation, deadlines, barrier-checkpoint suspension, and the stage
// watchdog. Under test:
//   (1) a run suspended at a round barrier and resumed finishes with
//       output, counters, and memory peaks bit-identical to an
//       uninterrupted run, at 1 and at 8 threads — including under an
//       injected fault (the checkpoint preserves the fault-site cursor);
//   (2) cancellation and deadlines at ANY poll point produce a graceful
//       kCancelled / kDeadlineExceeded FAIL (an OK Result with
//       metrics.failed, never an abort) across the workload x strategy
//       matrix, with decision points bit-identical across thread counts;
//   (3) the watchdog converts injected stragglers into deterministic
//       retries that converge to the clean answer, and a persistent
//       straggler degrades to a graceful FAIL;
//   (4) a clean run with the lifecycle armed keeps counters bit-identical
//       to a run without it (the serving isolation invariant).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/workloads.h"
#include "exec/lifecycle.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/explain.h"
#include "obs/resource.h"
#include "plan/strategies.h"
#include "runtime/parallel.h"

namespace ptp {
namespace {

WorkloadScale TinyScale() {
  WorkloadScale scale;
  scale.twitter.num_nodes = 400;
  scale.twitter.num_edges = 2500;
  scale.twitter.zipf_exponent = 0.7;
  scale.freebase_scale = 0.08;
  scale.seed = 99;
  return scale;
}

struct RunRecord {
  StrategyResult result;
  std::vector<std::pair<std::string, uint64_t>> counters;
  LifecycleStats lifecycle;
  uint64_t injected = 0;
};

// One strategy run with a private registry + armed meter, an optional
// fault schedule, and an optionally caller-armed lifecycle. Suspensions
// are resumed until completion (the served resume loop, inlined).
RunRecord RunWith(int threads, const NormalizedQuery& q, ShuffleKind shuffle,
                  JoinKind join, const StrategyOptions& opts,
                  const std::function<void(QueryLifecycle*)>& arm = nullptr,
                  const std::string& faults = "",
                  bool install_lifecycle = true) {
  runtime::SetThreads(threads);
  CounterRegistry registry;
  ResourceMeter meter;
  QueryLifecycle lifecycle;
  if (arm) arm(&lifecycle);
  CounterRegistry* prev_reg = SetActiveCounterRegistry(&registry);
  ResourceMeter* prev_meter = SetActiveResourceMeter(&meter);
  QueryLifecycle* prev_lc =
      install_lifecycle ? SetActiveQueryLifecycle(&lifecycle) : nullptr;
  std::unique_ptr<FaultInjector> injector;
  FaultInjector* prev_inj = nullptr;
  if (!faults.empty()) {
    auto plan = FaultPlan::Parse(faults);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    injector = std::make_unique<FaultInjector>(std::move(plan).value());
    prev_inj = SetActiveFaultInjector(injector.get());
  }
  Result<StrategyResult> result = RunStrategy(q, shuffle, join, opts);
  while (result.ok() && result->checkpoint != nullptr) {
    // Keep the checkpoint alive across the call that consumes it.
    std::shared_ptr<QueryCheckpoint> cp = result->checkpoint;
    result = ResumeStrategy(q, shuffle, join, opts, *cp);
  }
  if (injector != nullptr) SetActiveFaultInjector(prev_inj);
  if (install_lifecycle) SetActiveQueryLifecycle(prev_lc);
  SetActiveResourceMeter(prev_meter);
  SetActiveCounterRegistry(prev_reg);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunRecord record;
  if (result.ok()) record.result = std::move(result).value();
  record.counters = registry.CounterSnapshot();
  record.lifecycle = lifecycle.stats();
  if (injector != nullptr) record.injected = injector->injected();
  runtime::SetThreads(0);
  return record;
}

size_t TotalRetries(const QueryMetrics& m) {
  size_t total = 0;
  for (const StageMetrics& s : m.stages) total += s.retries;
  for (const ShuffleMetrics& s : m.shuffles) total += s.retries;
  return total;
}

void ExpectIdenticalOutcome(const RunRecord& a, const RunRecord& b,
                            const std::string& context) {
  EXPECT_EQ(a.result.output.data(), b.result.output.data())
      << context << ": outputs differ";
  EXPECT_EQ(a.counters, b.counters) << context << ": counters differ";
  EXPECT_EQ(a.result.metrics.peak_bytes, b.result.metrics.peak_bytes)
      << context;
  EXPECT_EQ(a.result.metrics.charged_bytes, b.result.metrics.charged_bytes)
      << context;
  EXPECT_EQ(a.result.metrics.stages.size(), b.result.metrics.stages.size())
      << context;
  EXPECT_EQ(a.result.metrics.TuplesShuffled(),
            b.result.metrics.TuplesShuffled())
      << context;
  EXPECT_EQ(a.result.metrics.failed, b.result.metrics.failed) << context;
}

// ---------------------------------------------------------------------------
// (4) The armed-but-clean invariant.
// ---------------------------------------------------------------------------

TEST(LifecycleArmedTest, CleanRunWithLifecycleArmedIsBitIdentical) {
  WorkloadFactory factory(TinyScale());
  for (int q : {1, 3}) {
    auto wl = factory.Make(q);
    ASSERT_TRUE(wl.ok()) << wl.status().ToString();
    StrategyOptions opts;
    opts.num_workers = 16;
    for (const auto& [shuffle, join] : AllStrategies()) {
      const std::string context =
          wl->id + std::string(" ") + StrategyName(shuffle, join);
      RunRecord off = RunWith(1, wl->normalized, shuffle, join, opts,
                              nullptr, "", /*install_lifecycle=*/false);
      RunRecord on = RunWith(1, wl->normalized, shuffle, join, opts);
      ExpectIdenticalOutcome(off, on, context);
      // The armed run visits poll points; the point of the invariant is
      // that visiting them changes nothing observable.
      EXPECT_GT(on.lifecycle.polls, 0u) << context;
      EXPECT_EQ(off.lifecycle.polls, 0u) << context;
    }
  }
}

// ---------------------------------------------------------------------------
// (1) Suspend at a barrier, resume, finish bit-identically.
// ---------------------------------------------------------------------------

TEST(LifecycleSuspendTest, SuspendResumeIsBitIdenticalAtEveryBarrier) {
  WorkloadFactory factory(TinyScale());
  // Q3 (triangle) and Q5 (a longer join) both take multiple regular-shuffle
  // rounds, so they expose interior barriers, not just the first one.
  for (int q : {3, 5}) {
    auto wl = factory.Make(q);
    ASSERT_TRUE(wl.ok()) << wl.status().ToString();
    StrategyOptions opts;
    opts.num_workers = 16;
    for (JoinKind join : {JoinKind::kHashJoin, JoinKind::kTributary}) {
      const std::string name = StrategyName(ShuffleKind::kRegular, join);
      RunRecord clean =
          RunWith(1, wl->normalized, ShuffleKind::kRegular, join, opts);
      for (uint64_t k = 1; k <= 3; ++k) {
        for (int threads : {1, 8}) {
          const std::string context =
              wl->id + " " + name + " barrier " + std::to_string(k) + " @" +
              std::to_string(threads) + " threads";
          RunRecord run = RunWith(
              threads, wl->normalized, ShuffleKind::kRegular, join, opts,
              [&](QueryLifecycle* lc) { lc->SuspendAtBarrier(k); });
          ExpectIdenticalOutcome(clean, run, context);
          // The first barrier always exists, so k=1 must actually suspend;
          // a k past the last barrier simply never fires.
          if (k == 1) {
            EXPECT_EQ(run.lifecycle.suspends, 1u) << context;
          }
          EXPECT_EQ(run.lifecycle.suspends, run.lifecycle.resumes)
              << context;
        }
      }
    }
  }
}

TEST(LifecycleSuspendTest, SuspendPreservesFaultSiteCursorAcrossResume) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  opts.num_workers = 16;

  // A transient crash addressed by site ordinal: if the resume renumbered
  // the remaining sites, the fault would hit a different stage (or none)
  // and the retry accounting would diverge from the uninterrupted run.
  const std::string schedule = "crash@site=1,worker=3,attempt=0";
  RunRecord clean = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                            JoinKind::kHashJoin, opts, nullptr, schedule);
  EXPECT_GT(clean.injected, 0u);
  EXPECT_GE(TotalRetries(clean.result.metrics), 1u);

  for (uint64_t k : {1, 2}) {
    for (int threads : {1, 8}) {
      const std::string context = "suspend at barrier " + std::to_string(k) +
                                  " @" + std::to_string(threads) +
                                  " threads";
      RunRecord run = RunWith(
          threads, wl->normalized, ShuffleKind::kRegular,
          JoinKind::kHashJoin, opts,
          [&](QueryLifecycle* lc) { lc->SuspendAtBarrier(k); }, schedule);
      ExpectIdenticalOutcome(clean, run, context);
      EXPECT_EQ(run.injected, clean.injected) << context;
      EXPECT_EQ(TotalRetries(run.result.metrics),
                TotalRetries(clean.result.metrics))
          << context;
    }
  }
}

TEST(LifecycleSuspendTest, SingleRoundFamiliesNeverHonorSuspension) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  opts.num_workers = 16;
  for (ShuffleKind shuffle :
       {ShuffleKind::kBroadcast, ShuffleKind::kHypercube}) {
    RunRecord run =
        RunWith(1, wl->normalized, shuffle, JoinKind::kHashJoin, opts,
                [](QueryLifecycle* lc) { lc->RequestSuspend(); });
    EXPECT_EQ(run.lifecycle.suspends, 0u);
    EXPECT_FALSE(run.result.metrics.failed) << run.result.metrics.fail_reason;
    EXPECT_GT(run.result.output.NumTuples(), 0u);
  }
}

// ---------------------------------------------------------------------------
// (2) Cancellation and deadlines: graceful FAIL at any poll point.
// ---------------------------------------------------------------------------

TEST(LifecycleCancelTest, CancelAtFirstPollFailsGracefullyAcrossMatrix) {
  WorkloadFactory factory(TinyScale());
  for (int q = 1; q <= 8; ++q) {
    auto wl = factory.Make(q);
    ASSERT_TRUE(wl.ok()) << wl.status().ToString();
    StrategyOptions opts;
    opts.num_workers = 16;
    for (const auto& [shuffle, join] : AllStrategies()) {
      const std::string context =
          wl->id + std::string(" ") + StrategyName(shuffle, join);
      RunRecord run =
          RunWith(1, wl->normalized, shuffle, join, opts,
                  [](QueryLifecycle* lc) { lc->CancelAfterPolls(1); });
      const QueryMetrics& m = run.result.metrics;
      EXPECT_TRUE(m.failed) << context;
      EXPECT_EQ(m.fail_code, StatusCode::kCancelled) << context;
      EXPECT_EQ(run.result.output.NumTuples(), 0u) << context;
      EXPECT_TRUE(run.lifecycle.cancelled) << context;
      EXPECT_EQ(run.lifecycle.polls, 1u) << context;
    }
  }
}

TEST(LifecycleCancelTest, CancelAtEveryPollPointIsDeterministic) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  opts.num_workers = 16;

  for (const auto& [shuffle, join] :
       {std::pair{ShuffleKind::kRegular, JoinKind::kHashJoin},
        std::pair{ShuffleKind::kHypercube, JoinKind::kTributary}}) {
    const std::string name = StrategyName(shuffle, join);
    RunRecord clean = RunWith(1, wl->normalized, shuffle, join, opts);
    ASSERT_FALSE(clean.result.metrics.failed) << name;
    const uint64_t polls = clean.lifecycle.polls;
    ASSERT_GT(polls, 2u) << name;

    for (uint64_t n = 1; n <= polls; ++n) {
      const std::string context =
          name + " cancel at poll " + std::to_string(n) + "/" +
          std::to_string(polls);
      RunRecord at1 =
          RunWith(1, wl->normalized, shuffle, join, opts,
                  [&](QueryLifecycle* lc) { lc->CancelAfterPolls(n); });
      const QueryMetrics& m = at1.result.metrics;
      EXPECT_TRUE(m.failed) << context;
      EXPECT_EQ(m.fail_code, StatusCode::kCancelled) << context;
      EXPECT_EQ(at1.result.output.NumTuples(), 0u) << context;
      EXPECT_EQ(at1.lifecycle.polls, n) << context;

      // The decision point — and everything completed before it — is
      // bit-identical at any thread count: same partial counters, same
      // stage account.
      RunRecord at8 =
          RunWith(8, wl->normalized, shuffle, join, opts,
                  [&](QueryLifecycle* lc) { lc->CancelAfterPolls(n); });
      EXPECT_EQ(at8.result.metrics.fail_code, StatusCode::kCancelled)
          << context;
      EXPECT_EQ(at8.counters, at1.counters) << context;
      EXPECT_EQ(at8.result.metrics.stages.size(), m.stages.size())
          << context;
      EXPECT_EQ(at8.lifecycle.polls, n) << context;
    }
  }
}

TEST(LifecycleDeadlineTest, DeadlineKnobTripsAsDeadlineExceeded) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  opts.num_workers = 16;
  RunRecord run =
      RunWith(1, wl->normalized, ShuffleKind::kRegular, JoinKind::kHashJoin,
              opts, [](QueryLifecycle* lc) { lc->DeadlineAfterPolls(2); });
  const QueryMetrics& m = run.result.metrics;
  EXPECT_TRUE(m.failed);
  EXPECT_EQ(m.fail_code, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(run.lifecycle.deadline_exceeded);
  EXPECT_EQ(run.lifecycle.polls, 2u);
}

TEST(LifecycleDeadlineTest, ExpiredWallClockDeadlineTripsAtFirstPoll) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  opts.num_workers = 16;
  RunRecord run =
      RunWith(1, wl->normalized, ShuffleKind::kRegular, JoinKind::kHashJoin,
              opts, [](QueryLifecycle* lc) { lc->SetDeadline(0.0); });
  EXPECT_TRUE(run.result.metrics.failed);
  EXPECT_EQ(run.result.metrics.fail_code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(run.lifecycle.polls, 1u);
}

TEST(LifecycleCancelTest, CancelledRunKeepsPartialMetrics) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  opts.num_workers = 16;
  RunRecord clean = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                            JoinKind::kHashJoin, opts);
  const uint64_t polls = clean.lifecycle.polls;
  ASSERT_GT(polls, 3u);
  // Cancelling late in the run leaves the completed rounds' account in the
  // metrics (the partial-metrics contract of a graceful FAIL).
  RunRecord late = RunWith(
      1, wl->normalized, ShuffleKind::kRegular, JoinKind::kHashJoin, opts,
      [&](QueryLifecycle* lc) { lc->CancelAfterPolls(polls - 1); });
  EXPECT_TRUE(late.result.metrics.failed);
  EXPECT_EQ(late.result.metrics.fail_code, StatusCode::kCancelled);
  EXPECT_GT(late.result.metrics.stages.size(), 0u);
  EXPECT_GT(late.result.metrics.TuplesShuffled(), 0u);
  EXPECT_FALSE(late.result.metrics.fail_reason.empty());
}

// ---------------------------------------------------------------------------
// (3) Stage watchdog.
// ---------------------------------------------------------------------------

TEST(WatchdogTest, TransientStragglerIsRetriedAndConvergesToCleanRun) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  opts.num_workers = 16;
  RunRecord clean = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                            JoinKind::kHashJoin, opts);

  // Worker 2's first attempt of every stage is 8x slow; the watchdog
  // (threshold 4x) treats it as hung and replays the stage. The retry's
  // attempt is fault-free, so the run converges to the clean answer.
  StrategyOptions wd = opts;
  wd.recovery.watchdog_straggle_factor = 4.0;
  for (int threads : {1, 8}) {
    RunRecord run =
        RunWith(threads, wl->normalized, ShuffleKind::kRegular,
                JoinKind::kHashJoin, wd, nullptr,
                "slow@worker=2,attempt=0,factor=8");
    const std::string context =
        "watchdog @" + std::to_string(threads) + " threads";
    EXPECT_FALSE(run.result.metrics.failed)
        << context << ": " << run.result.metrics.fail_reason;
    EXPECT_GE(run.lifecycle.watchdog_trips, 1u) << context;
    EXPECT_GE(TotalRetries(run.result.metrics), 1u) << context;
    EXPECT_EQ(run.result.output.data(), clean.result.output.data())
        << context;
    uint64_t trips = 0;
    for (const auto& [cname, value] : run.counters) {
      if (cname == "lifecycle.watchdog_trips") trips = value;
    }
    EXPECT_GE(trips, 1u) << context;
  }
}

TEST(WatchdogTest, PersistentStragglerFailsGracefully) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  opts.num_workers = 16;
  opts.recovery.watchdog_straggle_factor = 4.0;
  // attempt=* makes the straggler survive every retry: the ladder runs out
  // and the run FAILs gracefully, naming the watchdog.
  RunRecord run = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                          JoinKind::kHashJoin, opts, nullptr,
                          "slow@worker=2,attempt=*,factor=8");
  EXPECT_TRUE(run.result.metrics.failed);
  EXPECT_NE(run.result.metrics.fail_reason.find("watchdog"),
            std::string::npos)
      << run.result.metrics.fail_reason;
  EXPECT_EQ(run.result.output.NumTuples(), 0u);
}

TEST(WatchdogTest, DisabledWatchdogLeavesStragglersAsPerformanceFaults) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  opts.num_workers = 16;
  ASSERT_EQ(opts.recovery.watchdog_straggle_factor, 0.0);
  RunRecord run = RunWith(1, wl->normalized, ShuffleKind::kRegular,
                          JoinKind::kHashJoin, opts, nullptr,
                          "slow@worker=2,attempt=0,factor=8");
  EXPECT_FALSE(run.result.metrics.failed);
  EXPECT_EQ(TotalRetries(run.result.metrics), 0u);
  EXPECT_EQ(run.lifecycle.watchdog_trips, 0u);
}

// ---------------------------------------------------------------------------
// Observability surface.
// ---------------------------------------------------------------------------

TEST(LifecycleExplainTest, ExplainRendersLifecycleSection) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(3);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  opts.num_workers = 16;
  RunRecord run = RunWith(
      1, wl->normalized, ShuffleKind::kRegular, JoinKind::kHashJoin, opts,
      [](QueryLifecycle* lc) { lc->SuspendAtBarrier(1); });
  ASSERT_GT(run.lifecycle.polls, 0u);
  ExplainOptions eo;
  eo.include_timings = false;
  eo.lifecycle = &run.lifecycle;
  const std::string text = ExplainAnalyzeText("RS_HJ", run.result, eo);
  EXPECT_NE(text.find("lifecycle:"), std::string::npos) << text;
  EXPECT_NE(text.find("polls:"), std::string::npos) << text;
  EXPECT_NE(text.find("suspends:"), std::string::npos) << text;
}

TEST(LifecycleStatusTest, NewStatusCodesRoundTrip) {
  const Status c = Status::Cancelled("stop");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_NE(c.ToString().find("Cancelled"), std::string::npos);
  const Status d = Status::DeadlineExceeded("late");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(d.ToString().find("DeadlineExceeded"), std::string::npos);
}

}  // namespace
}  // namespace ptp
