#include <cmath>

#include "gtest/gtest.h"
#include "lp/shares_lp.h"
#include "lp/simplex.h"

namespace ptp {
namespace {

using Rel = LinearProgram::Relation;

TEST(SimplexTest, SimpleMaximizationViaNegation) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  ->  x=4, y=0, obj 12.
  LinearProgram lp({-3.0, -2.0});
  lp.AddConstraint({1, 1}, Rel::kLe, 4);
  lp.AddConstraint({1, 3}, Rel::kLe, 6);
  auto sol = lp.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -12.0, 1e-6);
  EXPECT_NEAR(sol->x[0], 4.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 0.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y s.t. x + y = 5, x >= 0  ->  obj 5.
  LinearProgram lp({1.0, 1.0});
  lp.AddConstraint({1, 1}, Rel::kEq, 5);
  auto sol = lp.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 5.0, 1e-6);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // min 2x + y s.t. x + y >= 3, x <= 2  ->  x=0,y=3 obj 3? check: 2x+y with
  // x+y>=3 minimized at x=0,y=3 -> 3.
  LinearProgram lp({2.0, 1.0});
  lp.AddConstraint({1, 1}, Rel::kGe, 3);
  lp.AddConstraint({1, 0}, Rel::kLe, 2);
  auto sol = lp.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 3.0, 1e-6);
}

TEST(SimplexTest, InfeasibleDetected) {
  LinearProgram lp({1.0});
  lp.AddConstraint({1}, Rel::kLe, 1);
  lp.AddConstraint({1}, Rel::kGe, 2);
  EXPECT_FALSE(lp.Solve().ok());
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x with only x >= 0: unbounded below.
  LinearProgram lp({-1.0});
  lp.AddConstraint({1}, Rel::kGe, 0);
  auto sol = lp.Solve();
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kOutOfRange);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // min x s.t. -x <= -2  (i.e. x >= 2).
  LinearProgram lp({1.0});
  lp.AddConstraint({-1}, Rel::kLe, -2);
  auto sol = lp.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->x[0], 2.0, 1e-6);
}

// --- Share LP ---------------------------------------------------------

ShareProblem TriangleProblem(double m1, double m2, double m3) {
  ShareProblem p;
  p.join_vars = {"x", "y", "z"};
  p.atoms = {{"S1", {0, 1}, m1}, {"S2", {1, 2}, m2}, {"S3", {2, 0}, m3}};
  return p;
}

TEST(SharesLpTest, SymmetricTriangleGetsEqualShares) {
  // |S1|=|S2|=|S3| -> e_i = 1/3 each (Sec. 2.1).
  auto frac = SolveFractionalShares(TriangleProblem(1e6, 1e6, 1e6), 64);
  ASSERT_TRUE(frac.ok()) << frac.status().ToString();
  for (double e : frac->exponents) EXPECT_NEAR(e, 1.0 / 3, 1e-4);
  for (double s : frac->shares) EXPECT_NEAR(s, 4.0, 1e-2);
  // Load = 3 * 1e6 / 64^(2/3) = 3e6 / 16.
  EXPECT_NEAR(frac->load, 3e6 / 16.0, 1e3);
}

TEST(SharesLpTest, SkewedCardinalitiesPushSharesToOneVariable) {
  // Paper Sec. 2.1: |S1| << |S2| = |S3| = m  =>  p1 = p2 = 1, p3 = p
  // (hash-partition S2, S3 on x3 == our z; broadcast S1).
  // Atoms: S1(x,y), S2(y,z), S3(z,x); the shared big-join variable is z.
  auto frac = SolveFractionalShares(TriangleProblem(10, 1e6, 1e6), 64);
  ASSERT_TRUE(frac.ok()) << frac.status().ToString();
  EXPECT_NEAR(frac->exponents[0], 0.0, 1e-3);  // x
  EXPECT_NEAR(frac->exponents[1], 0.0, 1e-3);  // y
  EXPECT_NEAR(frac->exponents[2], 1.0, 1e-3);  // z
}

TEST(SharesLpTest, FractionalLoadNeverWorseThanAnyIntegralConfig) {
  // The LP minimizes the max per-atom load; the per-server total of the
  // fractional solution lower-bounds (within factor #atoms) any integral
  // config. Sanity: fractional max-atom load <= best integral max-atom load.
  ShareProblem p = TriangleProblem(5e5, 1e6, 2e6);
  auto frac = SolveFractionalShares(p, 64);
  ASSERT_TRUE(frac.ok());
  // Compare per-atom loads (the LP objective), not summed loads.
  auto max_atom_load = [&](const std::vector<double>& shares) {
    double worst = 0;
    for (const auto& atom : p.atoms) {
      double denom = 1;
      for (int vi : atom.var_idx) denom *= shares[static_cast<size_t>(vi)];
      worst = std::max(worst, atom.cardinality / denom);
    }
    return worst;
  };
  const double frac_load = max_atom_load(frac->shares);
  for (int d1 : {1, 2, 4}) {
    for (int d2 : {1, 2, 4}) {
      for (int d3 : {1, 2, 4}) {
        if (d1 * d2 * d3 > 64) continue;
        const double load = max_atom_load(
            {static_cast<double>(d1), static_cast<double>(d2),
             static_cast<double>(d3)});
        EXPECT_LE(frac_load, load * (1 + 1e-6));
      }
    }
  }
}

TEST(SharesLpTest, IntegralConfigLoadComputesSum) {
  ShareProblem p = TriangleProblem(100, 200, 300);
  // dims (2, 2, 1): S1/(2*2) + S2/(2*1) + S3/(1*2) = 25 + 100 + 150.
  EXPECT_NEAR(IntegralConfigLoad(p, {2, 2, 1}), 275.0, 1e-9);
}

TEST(SharesLpTest, EmptyJoinVarsSumsCardinalities) {
  ShareProblem p;
  p.atoms = {{"A", {}, 100}, {"B", {}, 50}};
  auto frac = SolveFractionalShares(p, 8);
  ASSERT_TRUE(frac.ok());
  EXPECT_NEAR(frac->load, 150.0, 1e-9);
}

}  // namespace
}  // namespace ptp
