#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util/report.h"
#include "common/logging.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/explain.h"
#include "obs/trace.h"
#include "plan/strategies.h"
#include "query/parser.h"
#include "test_util.h"
#include "tj/order_optimizer.h"
#include "tj/tributary_join.h"

// Global allocation counter for the disabled-fast-path test: tracing that is
// switched off must not allocate. Overriding operator new in this TU covers
// the whole test binary; only the marked sections read the counter.
namespace {
size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ptp {
namespace {

using internal_logging::ParseSeverity;
using internal_logging::SetMinLogSeverity;
using internal_logging::Severity;

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator — no semantics, just structure, string
// escapes and number shape; catches unbalanced output or stray commas in the
// exported documents.
// ---------------------------------------------------------------------------
class JsonValidator {
 public:
  static bool Valid(std::string_view s) {
    JsonValidator v(s);
    v.SkipWs();
    if (!v.Value()) return false;
    v.SkipWs();
    return v.pos_ == s.size();
  }

 private:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Value() {
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    bool digits = false;
    while (pos_ < s_.size() && (std::isdigit(s_[pos_]) || s_[pos_] == '.' ||
                                s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      digits = digits || std::isdigit(s_[pos_]);
      ++pos_;
    }
    return digits && pos_ > start;
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() || !std::isxdigit(s_[pos_++])) return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool Object() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool Array() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

NormalizedQuery RandomQuery(const char* text, uint64_t seed, size_t tuples,
                            Value domain) {
  Rng rng(seed);
  auto parsed = ParseDatalog(text, nullptr);
  PTP_CHECK(parsed.ok()) << parsed.status().ToString();
  Catalog catalog;
  for (const Atom& atom : parsed->atoms()) {
    if (!catalog.Contains(atom.relation)) {
      catalog.Put(test::RandomBinaryRelation(
          atom.relation, atom.Variables(), tuples, domain, &rng));
    }
  }
  auto nq = Normalize(*parsed, catalog);
  PTP_CHECK(nq.ok()) << nq.status().ToString();
  return std::move(nq).value();
}

// Installs a session/registry for the scope of one test and guarantees
// uninstallation even on assertion failure.
struct ScopedObservability {
  TraceSession trace;
  CounterRegistry counters;
  ScopedObservability() {
    SetActiveTraceSession(&trace);
    SetActiveCounterRegistry(&counters);
  }
  ~ScopedObservability() {
    SetActiveTraceSession(nullptr);
    SetActiveCounterRegistry(nullptr);
  }
};

TEST(JsonQuoteTest, EscapesSpecials) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(JsonQuote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_TRUE(JsonValidator::Valid(JsonQuote(std::string("\x01\x1f"))));
}

TEST(JsonValidatorTest, SanityOnItself) {
  EXPECT_TRUE(JsonValidator::Valid(R"({"a":[1,2.5,-3e4],"b":{"c":null}})"));
  EXPECT_TRUE(JsonValidator::Valid("[]"));
  EXPECT_FALSE(JsonValidator::Valid("{"));
  EXPECT_FALSE(JsonValidator::Valid("[1,]"));
  EXPECT_FALSE(JsonValidator::Valid("{\"a\":1} extra"));
  EXPECT_FALSE(JsonValidator::Valid("\"bad\\x\""));
}

TEST(TraceSessionTest, RecordsSpansCountersAndSerializes) {
  TraceSession session;
  session.NameTrack(kCoordinatorTrack, "coordinator");
  session.BeginSpan("outer", kCoordinatorTrack);
  session.Counter("tuples", 42, kCoordinatorTrack);
  session.Instant("note", "something happened", kCoordinatorTrack);
  session.EndSpan("outer", kCoordinatorTrack);
  session.CompleteSpan("late", WorkerTrack(0), 1500.0);

  ASSERT_EQ(session.events().size(), 6u);
  EXPECT_EQ(session.events()[0].phase, TraceEvent::Phase::kMetadata);
  EXPECT_EQ(session.events()[1].name, "outer");
  EXPECT_EQ(session.events()[2].value, 42.0);

  const std::string json = session.ToJson();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceSessionTest, TimestampsAreMonotonic) {
  TraceSession session;
  for (int i = 0; i < 100; ++i) {
    Span span("tick", kCoordinatorTrack);
  }
  double last = -1.0;
  for (const TraceEvent& e : session.events()) {
    EXPECT_GE(e.ts_us, last);
    last = e.ts_us;
  }
}

TEST(SpanTest, NullSessionIsNoop) {
  SetActiveTraceSession(nullptr);
  Span span("ignored", WorkerTrack(3));  // must not crash or record
  SUCCEED();
}

TEST(SpanTest, DisabledPathEmitsNoEventsAndDoesNotAllocate) {
  SetActiveTraceSession(nullptr);
  SetActiveCounterRegistry(nullptr);
  const size_t before = g_alloc_count;
  for (int i = 0; i < 1000; ++i) {
    Span span("hot loop", WorkerTrack(1));
    if (CounterRegistry* reg = ActiveCounterRegistry()) {
      reg->Add("never", 1);
    }
    if (TraceSession* trace = ActiveTraceSession()) {
      trace->Counter("never", 1.0);
    }
  }
  EXPECT_EQ(g_alloc_count, before)
      << "disabled instrumentation must not allocate";
}

TEST(CounterRegistryTest, CountersAreMonotonicAndSorted) {
  CounterRegistry reg;
  reg.Add("b.second", 2);
  reg.Add("a.first", 1);
  reg.Add("a.first", 4);
  EXPECT_EQ(reg.Value("a.first"), 5u);
  EXPECT_EQ(reg.Value("missing"), 0u);

  uint64_t* cell = reg.Counter("a.first");
  *cell += 10;
  EXPECT_EQ(reg.Value("a.first"), 15u);

  auto snapshot = reg.CounterSnapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "a.first");  // name order
  EXPECT_EQ(snapshot[1].first, "b.second");

  auto prefixed = reg.CountersWithPrefix("a.");
  ASSERT_EQ(prefixed.size(), 1u);
  EXPECT_EQ(prefixed[0].second, 15u);
}

TEST(CounterRegistryTest, HistogramBucketsAndJson) {
  CounterRegistry reg;
  Histogram* h = reg.Hist("loads");
  h->Record(0);
  h->Record(3);
  h->Record(1000);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 1003u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 1000u);
  EXPECT_NEAR(h->Mean(), 1003.0 / 3.0, 1e-9);

  reg.Add("x", 7);
  std::ostringstream os;
  reg.WriteJson(os);
  EXPECT_TRUE(JsonValidator::Valid(os.str())) << os.str();
}

// Pins the pow2-bucket quantile estimator's interpolation exactly (the
// fleet latency percentiles and BENCH_serving.json's p50/p95/p99/p999 all
// come from it): continuous rank q*(count-1) located by cumulative bucket
// counts, samples assumed evenly spaced within a bucket, result clamped to
// the tracked [min, max].
TEST(HistogramTest, QuantileEmptyAndSingleSample) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);

  h.Record(100);
  // One sample: every quantile is that sample — the bucket midpoint
  // estimate is clamped to [min, max] = [100, 100].
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 100.0) << q;
  }
}

TEST(HistogramTest, QuantileTwoSamplesInterpolatesWithinBucket) {
  Histogram h;
  h.Record(1);     // bucket 1: [1, 2)
  h.Record(1024);  // bucket 11: [1024, 2048)
  // rank 0 -> offset 0 in bucket 1 -> its lower bound.
  EXPECT_EQ(h.Quantile(0.0), 1.0);
  // rank 1 -> offset 0 in bucket 11 -> 1024.
  EXPECT_EQ(h.Quantile(1.0), 1024.0);
  // rank 0.5 -> halfway through bucket 1's [1, 2): 1 + (2-1) * 0.5.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.5);
  // Out-of-range q clamps.
  EXPECT_EQ(h.Quantile(-1.0), 1.0);
  EXPECT_EQ(h.Quantile(2.0), 1024.0);
}

TEST(HistogramTest, QuantileEvenSpacingWithinBucket) {
  Histogram h;
  for (uint64_t v : {4, 5, 6, 7}) h.Record(v);  // all bucket 3: [4, 8)
  // rank q*(4-1); n=4 samples spread over [4, 8): 4 + 4 * (rank / 4).
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 4.0 + 4.0 * (1.5 / 4.0));
  // rank 3 -> 4 + 4 * (3/4) = 7 == max (clamp is a no-op here).
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 7.0);
}

TEST(HistogramTest, QuantileZeroBucketEstimatesZero) {
  Histogram h;
  h.Record(0);
  h.Record(0);
  h.Record(0);
  h.Record(8);  // bucket 4: [8, 16)
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // rank 1.5 still in the zero bucket
  EXPECT_EQ(h.Quantile(1.0), 8.0);  // rank 3, offset 0 in bucket 4
}

TEST(ObservedRunTest, WorkerSpansPerStageAndShuffleCounters) {
  const int W = 4;
  NormalizedQuery q = RandomQuery("T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 11,
                                  150, 20);
  ScopedObservability obs;
  StrategyOptions opts;
  opts.num_workers = W;
  std::vector<StrategyResult> results = RunAllStrategies(q, opts).value();
  ASSERT_EQ(results.size(), 6u);

  // Index begin-events: span name -> set of tracks it appeared on.
  std::map<std::string, std::set<int>> span_tracks;
  size_t shuffle_counter_events = 0;
  for (const TraceEvent& e : obs.trace.events()) {
    if (e.phase == TraceEvent::Phase::kBegin) {
      span_tracks[e.name].insert(e.track);
    }
    if (e.phase == TraceEvent::Phase::kCounter &&
        e.name == "shuffle.tuples_sent") {
      ++shuffle_counter_events;
    }
  }

  // Every strategy ran under a coordinator-track span named after it.
  for (const auto& [shuffle, join] : AllStrategies()) {
    const std::string name = StrategyName(shuffle, join);
    ASSERT_TRUE(span_tracks.count(name)) << name;
    EXPECT_TRUE(span_tracks[name].count(kCoordinatorTrack)) << name;
  }

  // Each per-worker stage produced one span per worker: the local one-round
  // stages (BR/HC) and the per-round RS stages.
  for (const char* stage : {"local TJ", "local HJ pipeline", "join_1",
                            "join_2"}) {
    ASSERT_TRUE(span_tracks.count(stage)) << stage;
    for (int w = 0; w < W; ++w) {
      EXPECT_TRUE(span_tracks[stage].count(WorkerTrack(w)))
          << stage << " missing span on worker " << w;
    }
  }

  EXPECT_GT(shuffle_counter_events, 0u);

  // The whole trace must be loadable JSON.
  EXPECT_TRUE(JsonValidator::Valid(obs.trace.ToJson()));

  // Registry side: the hot paths published their aggregates.
  EXPECT_GT(obs.counters.Value("shuffle.count"), 0u);
  EXPECT_GT(obs.counters.Value("shuffle.tuples_sent"), 0u);
  EXPECT_GT(obs.counters.Value("shuffle.bytes_sent"), 0u);
  EXPECT_GT(obs.counters.Value("pipeline.joins"), 0u);
  EXPECT_GT(obs.counters.Value("tj.joins"), 0u);
  EXPECT_GT(obs.counters.Value("tj.seeks"), 0u);
  // Per-variable seek attribution for the triangle variables.
  uint64_t per_var = 0;
  for (const auto& [name, value] : obs.counters.CountersWithPrefix("tj.seeks.")) {
    per_var += value;
  }
  EXPECT_EQ(per_var, obs.counters.Value("tj.seeks"))
      << "per-variable seeks must sum to the total";
}

TEST(ObservedRunTest, SpansNestPerTrack) {
  NormalizedQuery q = RandomQuery("T(x,z) :- R(x,y), S(y,z).", 5, 80, 12);
  TraceSession session;
  SetActiveTraceSession(&session);
  StrategyOptions opts;
  opts.num_workers = 3;
  auto result = RunStrategy(q, ShuffleKind::kBroadcast, JoinKind::kTributary,
                            opts);
  SetActiveTraceSession(nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Replay: per track, B/E events must form a proper LIFO nesting.
  std::map<int, std::vector<std::string>> stacks;
  for (const TraceEvent& e : session.events()) {
    if (e.phase == TraceEvent::Phase::kBegin) {
      stacks[e.track].push_back(e.name);
    } else if (e.phase == TraceEvent::Phase::kEnd) {
      ASSERT_FALSE(stacks[e.track].empty())
          << "E without matching B on track " << e.track;
      EXPECT_EQ(stacks[e.track].back(), e.name);
      stacks[e.track].pop_back();
    }
  }
  for (const auto& [track, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on track " << track;
  }
}

TEST(LoggingTest, ParseSeverityAcceptsNamesAndNumbers) {
  Severity s = Severity::kInfo;
  EXPECT_TRUE(ParseSeverity("warning", &s));
  EXPECT_EQ(s, Severity::kWarning);
  EXPECT_TRUE(ParseSeverity("WARN", &s));
  EXPECT_EQ(s, Severity::kWarning);
  EXPECT_TRUE(ParseSeverity("Error", &s));
  EXPECT_EQ(s, Severity::kError);
  EXPECT_TRUE(ParseSeverity("0", &s));
  EXPECT_EQ(s, Severity::kInfo);
  EXPECT_TRUE(ParseSeverity("3", &s));
  EXPECT_EQ(s, Severity::kFatal);
  EXPECT_FALSE(ParseSeverity("verbose", &s));
  EXPECT_FALSE(ParseSeverity("", &s));
  EXPECT_EQ(s, Severity::kFatal);  // untouched on failure
}

TEST(LoggingTest, LogLinesBecomeInstantTraceEvents) {
  TraceSession session;
  SetActiveTraceSession(&session);
  const Severity prev = SetMinLogSeverity(Severity::kInfo);
  PTP_LOG(Warning) << "shuffle imbalance detected";
  SetMinLogSeverity(prev);
  SetActiveTraceSession(nullptr);

  bool found = false;
  for (const TraceEvent& e : session.events()) {
    if (e.phase == TraceEvent::Phase::kInstant && e.name == "log.warning" &&
        e.detail.find("shuffle imbalance detected") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "log line not mirrored into the trace";
}

TEST(LoggingTest, LinesBelowMinSeverityAreNotTraced) {
  TraceSession session;
  SetActiveTraceSession(&session);
  const Severity prev = SetMinLogSeverity(Severity::kError);
  PTP_LOG(Info) << "should be filtered";
  SetMinLogSeverity(prev);
  SetActiveTraceSession(nullptr);
  for (const TraceEvent& e : session.events()) {
    EXPECT_EQ(e.detail.find("should be filtered"), std::string::npos);
  }
}

TEST(ExplainAnalyzeTest, GoldenText) {
  StrategyResult r;
  r.join_order_used = {0, 1};
  r.metrics.shuffles.push_back({"R(x,y) ->h(y)", 1000, 1.25, 1.5});
  StageMetrics stage;
  stage.label = "join_1";
  stage.output_tuples = 420;
  r.metrics.stages.push_back(stage);
  r.metrics.max_intermediate_tuples = 800;
  r.metrics.output_tuples = 420;

  ExplainOptions options;
  options.include_timings = false;  // deterministic
  const std::string got = ExplainAnalyzeText("RS_HJ", r, options);
  const std::string want =
      "EXPLAIN ANALYZE RS_HJ\n"
      "  shuffled=1,000  max_intermediate=800  output=420\n"
      "  plan: join order [0, 1]\n"
      "  ├─ shuffle R(x,y) ->h(y): sent=1,000 producer_skew=1.25 "
      "consumer_skew=1.50\n"
      "  └─ stage join_1: out=420\n";
  EXPECT_EQ(got, want);
}

TEST(ExplainAnalyzeTest, FailedRunShowsReason) {
  StrategyResult r;
  r.metrics.failed = true;
  r.metrics.fail_reason = "out of memory";
  ExplainOptions options;
  options.include_timings = false;
  const std::string text = ExplainAnalyzeText("HC_TJ", r, options);
  EXPECT_NE(text.find("FAILED: out of memory"), std::string::npos);
  EXPECT_EQ(SummaryCells(r.metrics)[0], "FAIL");
}

TEST(ExplainAnalyzeTest, JsonExportsAreValid) {
  NormalizedQuery q = RandomQuery("T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 19,
                                  100, 16);
  CounterRegistry counters;
  SetActiveCounterRegistry(&counters);
  StrategyOptions opts;
  opts.num_workers = 2;
  std::vector<StrategyResult> results = RunAllStrategies(q, opts).value();
  SetActiveCounterRegistry(nullptr);

  ExplainOptions eo;
  eo.counters = &counters;
  std::ostringstream one;
  ExplainAnalyzeJson(one, "RS_HJ", results[0], eo);
  EXPECT_TRUE(JsonValidator::Valid(one.str())) << one.str();

  std::ostringstream all;
  WriteStrategiesJson(all, results, eo);
  EXPECT_TRUE(JsonValidator::Valid(all.str())) << all.str();
  EXPECT_NE(all.str().find("\"observability\""), std::string::npos);
  EXPECT_NE(all.str().find("\"HC_TJ\""), std::string::npos);
}

TEST(CostModelValidationTest, PredictedSeeksTrackMeasuredSeeks) {
  // Triangle query at growing scales: the Sec. 5 cost model's predicted
  // seeks and the registry-measured seeks must correlate strongly (log-log
  // Pearson >= 0.9) — the acceptance bar for the Figure 12 reproduction.
  CounterRegistry reg;
  SetActiveCounterRegistry(&reg);
  std::vector<double> predicted, measured;
  uint64_t mark = 0;
  for (const size_t edges : {200u, 800u, 3200u}) {
    NormalizedQuery q =
        RandomQuery("T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 23, edges,
                    static_cast<Value>(edges / 8));
    OrderChoice best = OptimizeVariableOrder(q);
    auto count = TributaryJoinQuery(q, best.order);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    const uint64_t seeks = reg.Value("tj.seeks") - mark;
    mark = reg.Value("tj.seeks");
    ASSERT_GT(seeks, 0u);
    predicted.push_back(std::log10(std::max(1.0, best.estimated_cost)));
    measured.push_back(std::log10(static_cast<double>(seeks)));
  }
  SetActiveCounterRegistry(nullptr);
  const double r = PearsonCorrelation(predicted, measured);
  EXPECT_GE(r, 0.9) << "predicted vs measured seek correlation too weak";
}

TEST(TJMetricsTest, PerVariableSeeksSumToTotal) {
  NormalizedQuery q = RandomQuery("T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 31,
                                  120, 15);
  std::vector<const Relation*> inputs;
  for (const NormalizedAtom& atom : q.atoms) inputs.push_back(&atom.relation);
  const std::vector<std::string> order = {"x", "y", "z"};
  TJMetrics metrics;
  auto result = TributaryCount(inputs, order, {}, {}, &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(metrics.seeks_per_var.size(), 3u);
  size_t sum = 0;
  for (size_t s : metrics.seeks_per_var) sum += s;
  EXPECT_EQ(sum, metrics.seeks);
  EXPECT_GT(metrics.opens, 0u);
  EXPECT_EQ(metrics.opens, metrics.ups);  // every Open is matched by an Up
}

}  // namespace
}  // namespace ptp
