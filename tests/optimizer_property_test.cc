// Property tests for the share optimizer: Algorithm 1's exhaustive search
// must equal a brute-force minimum, respect the worker budget, and dominate
// the naive baselines across randomized problems.

#include <algorithm>
#include <functional>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "hypercube/cell_allocation.h"
#include "hypercube/optimizer.h"

namespace ptp {
namespace {

ShareProblem RandomProblem(Rng* rng, size_t num_vars, size_t num_atoms) {
  ShareProblem p;
  for (size_t i = 0; i < num_vars; ++i) {
    p.join_vars.push_back("v" + std::to_string(i));
  }
  for (size_t a = 0; a < num_atoms; ++a) {
    ShareProblem::AtomInfo info;
    info.name = "R" + std::to_string(a);
    info.cardinality = 1000.0 + static_cast<double>(rng->Uniform(1000000));
    // Each atom touches 1-3 distinct variables.
    const size_t touch = 1 + rng->Uniform(std::min<size_t>(3, num_vars));
    while (info.var_idx.size() < touch) {
      int v = static_cast<int>(rng->Uniform(num_vars));
      if (std::find(info.var_idx.begin(), info.var_idx.end(), v) ==
          info.var_idx.end()) {
        info.var_idx.push_back(v);
      }
    }
    p.atoms.push_back(std::move(info));
  }
  return p;
}

// Brute force over all dim vectors with product <= n (k <= 3 only).
double BruteForceBestLoad(const ShareProblem& p, int n) {
  PTP_CHECK_LE(p.join_vars.size(), 3u);
  double best = std::numeric_limits<double>::infinity();
  const int k = static_cast<int>(p.join_vars.size());
  std::vector<int> dims(static_cast<size_t>(k), 1);
  std::function<void(int, int)> rec = [&](int idx, int budget) {
    if (idx == k) {
      best = std::min(best, IntegralConfigLoad(p, dims));
      return;
    }
    for (int d = 1; d <= budget; ++d) {
      dims[static_cast<size_t>(idx)] = d;
      rec(idx + 1, budget / d);
    }
  };
  rec(0, n);
  return best;
}

class OptimizerRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerRandomSweep, MatchesBruteForceAndDominatesBaselines) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  const size_t num_vars = 1 + rng.Uniform(3);  // 1..3 (brute force feasible)
  const size_t num_atoms = 2 + rng.Uniform(4);
  ShareProblem p = RandomProblem(&rng, num_vars, num_atoms);
  const int n = static_cast<int>(2 + rng.Uniform(80));

  ConfigChoice ours = OptimizeShares(p, n);
  EXPECT_LE(ours.config.NumCells(), n);
  EXPECT_NEAR(ours.expected_load, BruteForceBestLoad(p, n),
              1e-6 * ours.expected_load);

  auto down = RoundDownShares(p, n);
  ASSERT_TRUE(down.ok()) << down.status().ToString();
  EXPECT_LE(ours.expected_load, down->expected_load * (1 + 1e-9));

  auto random = RandomCellAllocation(p, n, std::max(n, 256), rng.Next());
  if (random.ok()) {
    EXPECT_LE(ours.expected_load,
              AllocationMaxLoad(p, *random) * (1 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerRandomSweep,
                         ::testing::Range(0, 25));

TEST(OptimizerPropertyTest, LoadMonotoneInWorkers) {
  // More workers can never hurt the optimal expected load.
  Rng rng(3);
  ShareProblem p = RandomProblem(&rng, 3, 4);
  double prev = std::numeric_limits<double>::infinity();
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    ConfigChoice c = OptimizeShares(p, n);
    EXPECT_LE(c.expected_load, prev * (1 + 1e-9)) << "n=" << n;
    prev = c.expected_load;
  }
}

TEST(OptimizerPropertyTest, FractionalLowerBoundsMaxAtomLoad) {
  // The LP's max-per-atom load lower-bounds every integral config's
  // max-per-atom load (the quantity the LP optimizes).
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    ShareProblem p = RandomProblem(&rng, 2 + rng.Uniform(2), 3);
    const int n = 64;
    auto frac = SolveFractionalShares(p, n);
    ASSERT_TRUE(frac.ok());
    auto max_atom_load = [&](const std::vector<double>& shares) {
      double worst = 0;
      for (const auto& atom : p.atoms) {
        double denom = 1;
        for (int vi : atom.var_idx) denom *= shares[static_cast<size_t>(vi)];
        worst = std::max(worst, atom.cardinality / denom);
      }
      return worst;
    };
    ConfigChoice ours = OptimizeShares(p, n);
    std::vector<double> integral_shares;
    for (int d : ours.config.dims) {
      integral_shares.push_back(static_cast<double>(d));
    }
    EXPECT_LE(max_atom_load(frac->shares),
              max_atom_load(integral_shares) * (1 + 1e-6));
  }
}

}  // namespace
}  // namespace ptp
