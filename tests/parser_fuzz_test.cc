// Robustness: the Datalog parser must return Status (never crash, never
// hang) on arbitrary inputs — random bytes, truncations of valid queries,
// and single-character mutations.

#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "query/parser.h"

namespace ptp {
namespace {

const char* kValid =
    "ActorPairs(a1, a2) :- ActorPerform(a1, p1), PerformFilm(p1, f1), "
    "ObjectName(a2, \"Joe Pesci\"), f1 > 1990.";

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(32 + rng.Uniform(95)));
    }
    Dictionary dict;
    auto result = ParseDatalog(input, &dict);  // must not crash
    (void)result;
  }
}

TEST(ParserFuzzTest, TruncationsNeverCrash) {
  const std::string valid = kValid;
  for (size_t cut = 0; cut <= valid.size(); ++cut) {
    Dictionary dict;
    auto result = ParseDatalog(valid.substr(0, cut), &dict);
    if (cut == valid.size()) {
      EXPECT_TRUE(result.ok());
    }
  }
}

TEST(ParserFuzzTest, SingleCharMutationsNeverCrash) {
  const std::string valid = kValid;
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    mutated[rng.Uniform(mutated.size())] =
        static_cast<char>(32 + rng.Uniform(95));
    Dictionary dict;
    auto result = ParseDatalog(mutated, &dict);
    (void)result;
  }
}

TEST(ParserFuzzTest, DeeplyNestedJunkRejectedQuickly) {
  // Pathological inputs must fail fast, not blow the stack or loop.
  Dictionary dict;
  std::string many_parens = "Q(x) :- R(";
  many_parens += std::string(10000, '(');
  EXPECT_FALSE(ParseDatalog(many_parens, &dict).ok());

  std::string many_commas = "Q(x) :- R(x";
  for (int i = 0; i < 10000; ++i) many_commas += ",x";
  many_commas += ")";
  EXPECT_TRUE(ParseDatalog(many_commas, &dict).ok());  // large but valid
}

TEST(ParserFuzzTest, ValidQueriesStillParseAfterFuzzing) {
  Dictionary dict;
  auto q = ParseDatalog(kValid, &dict);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms().size(), 3u);
  EXPECT_EQ(q->predicates().size(), 1u);
}

}  // namespace
}  // namespace ptp
