#include "query/parser.h"

#include "gtest/gtest.h"

namespace ptp {
namespace {

TEST(ParserTest, TriangleQuery) {
  auto q = ParseDatalog(
      "T(x,y,z) :- R(x,y), S(y,z), U(z,x).", nullptr);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->head_name(), "T");
  EXPECT_EQ(q->head_vars(), (std::vector<std::string>{"x", "y", "z"}));
  ASSERT_EQ(q->atoms().size(), 3u);
  EXPECT_EQ(q->atoms()[2].relation, "U");
  EXPECT_TRUE(q->predicates().empty());
}

TEST(ParserTest, WhitespaceAndTrailingDotOptional) {
  auto q = ParseDatalog("  T( x , y )   :-   R(x,y)  ", nullptr);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms().size(), 1u);
}

TEST(ParserTest, IntegerConstants) {
  auto q = ParseDatalog("Q(x) :- R(x, 42), S(x, -7).", nullptr);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->atoms()[0].terms[1].is_constant());
  EXPECT_EQ(q->atoms()[0].terms[1].constant, 42);
  EXPECT_EQ(q->atoms()[1].terms[1].constant, -7);
}

TEST(ParserTest, StringConstantsInternedIntoDictionary) {
  Dictionary dict;
  auto q = ParseDatalog(
      "Q(x) :- ObjectName(x, \"Joe Pesci\"), ObjectName(x, \"Joe Pesci\").",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->atoms()[0].terms[1].is_constant());
  EXPECT_EQ(q->atoms()[0].terms[1].constant,
            q->atoms()[1].terms[1].constant);
  EXPECT_EQ(dict.String(q->atoms()[0].terms[1].constant), "Joe Pesci");
}

TEST(ParserTest, StringConstantWithoutDictionaryFails) {
  auto q = ParseDatalog("Q(x) :- R(x, \"a\").", nullptr);
  EXPECT_FALSE(q.ok());
}

TEST(ParserTest, ComparisonPredicates) {
  auto q = ParseDatalog(
      "Q(a,b) :- R(a,f1), S(b,f2), f1 > f2, a != b, b >= 3.", nullptr);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicates().size(), 3u);
  EXPECT_EQ(q->predicates()[0].op, CmpOp::kGt);
  EXPECT_EQ(q->predicates()[1].op, CmpOp::kNe);
  EXPECT_EQ(q->predicates()[2].op, CmpOp::kGe);
  EXPECT_TRUE(q->predicates()[2].rhs.is_constant());
}

TEST(ParserTest, AndKeywordAccepted) {
  auto q = ParseDatalog(
      "Q(a) :- HonorYear(h, y), y >= 1990 AND y < 2000, HonorActor(h, a).",
      nullptr);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms().size(), 2u);
  EXPECT_EQ(q->predicates().size(), 2u);
}

TEST(ParserTest, PaperQ4Parses) {
  auto q = ParseDatalog(
      "ActorPairs(a1, a2) :- ActorPerform(a1, p1), PerformFilm(p1, f1), "
      "PerformFilm(p2, f1), ActorPerform(a2, p2), ActorPerform(a2, p3), "
      "PerformFilm(p3, f2), PerformFilm(p4, f2), ActorPerform(a1, p4), "
      "f1 > f2.",
      nullptr);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms().size(), 8u);
  EXPECT_EQ(q->predicates().size(), 1u);
  EXPECT_EQ(q->variables().size(), 8u);
}

TEST(ParserTest, RejectsMissingBody) {
  EXPECT_FALSE(ParseDatalog("Q(x)", nullptr).ok());
  EXPECT_FALSE(ParseDatalog("Q(x) :-", nullptr).ok());
}

TEST(ParserTest, RejectsConstantInHead) {
  EXPECT_FALSE(ParseDatalog("Q(3) :- R(x, 3).", nullptr).ok());
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseDatalog("Q(x) :- R(x, y). garbage", nullptr).ok());
}

TEST(ParserTest, RejectsUnterminatedString) {
  Dictionary dict;
  EXPECT_FALSE(ParseDatalog("Q(x) :- R(x, \"oops).", &dict).ok());
}

TEST(ParserTest, RoundTripsThroughToString) {
  Dictionary dict;
  const char* text = "Q(x, z) :- R(x, y), S(y, z), x < z.";
  auto q = ParseDatalog(text, &dict);
  ASSERT_TRUE(q.ok());
  auto q2 = ParseDatalog(q->ToString(), &dict);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

}  // namespace
}  // namespace ptp
