#include "query/planner.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace ptp {
namespace {

TEST(EstimateJoinSizeTest, IndependenceFormula) {
  // |L|=100 |R|=200, one shared var with distinct 10 vs 20:
  // 100*200 / max(10,20) = 1000.
  EXPECT_DOUBLE_EQ(EstimateJoinSize(100, {10}, 200, {20}), 1000.0);
  // No shared vars -> cross product.
  EXPECT_DOUBLE_EQ(EstimateJoinSize(10, {}, 20, {}), 200.0);
}

NormalizedQuery SelectiveChain(uint64_t seed) {
  // Tiny(a) -- R(a,b) -- S(b,c): the greedy order must start with the
  // selective Tiny side.
  Rng rng(seed);
  NormalizedQuery q;
  Relation tiny("Tiny", Schema{"a"});
  tiny.AddTuple({1});
  tiny.AddTuple({2});
  q.atoms.push_back({{"a"}, tiny});
  q.atoms.push_back(
      {{"a", "b"}, test::RandomBinaryRelation("R", {"a", "b"}, 200, 40, &rng)});
  q.atoms.push_back(
      {{"b", "c"}, test::RandomBinaryRelation("S", {"b", "c"}, 200, 40, &rng)});
  q.head_vars = {"c"};
  return q;
}

TEST(GreedyLeftDeepOrderTest, CoversAllAtomsOnce) {
  NormalizedQuery q = SelectiveChain(1);
  std::vector<int> order = GreedyLeftDeepOrder(q);
  ASSERT_EQ(order.size(), 3u);
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
}

TEST(GreedyLeftDeepOrderTest, StartsWithSelectiveAtom) {
  NormalizedQuery q = SelectiveChain(2);
  std::vector<int> order = GreedyLeftDeepOrder(q);
  // The 2-tuple Tiny atom should participate in the seed pair.
  EXPECT_TRUE(order[0] == 0 || order[1] == 0)
      << "order starts " << order[0] << ", " << order[1];
}

TEST(GreedyLeftDeepOrderTest, ConnectedBeforeCrossProduct) {
  // R(a,b), S(b,c), X(q,r): X is disconnected and must come last.
  Rng rng(3);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"a", "b"}, test::RandomBinaryRelation("R", {"a", "b"}, 50, 10, &rng)});
  q.atoms.push_back(
      {{"b", "c"}, test::RandomBinaryRelation("S", {"b", "c"}, 50, 10, &rng)});
  q.atoms.push_back(
      {{"q", "r"}, test::RandomBinaryRelation("X", {"q", "r"}, 5, 10, &rng)});
  q.head_vars = {"a"};
  std::vector<int> order = GreedyLeftDeepOrder(q);
  EXPECT_EQ(order.back(), 2);
}

TEST(EstimateLeftDeepSizesTest, MonotoneDefinitions) {
  NormalizedQuery q = SelectiveChain(4);
  std::vector<int> order = GreedyLeftDeepOrder(q);
  std::vector<double> sizes = EstimateLeftDeepSizes(q, order);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_GT(sizes[0], 0.0);
}

TEST(GreedyLeftDeepOrderTest, SingleAtom) {
  Rng rng(5);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"a", "b"}, test::RandomBinaryRelation("R", {"a", "b"}, 10, 5, &rng)});
  q.head_vars = {"a"};
  EXPECT_EQ(GreedyLeftDeepOrder(q), (std::vector<int>{0}));
}

}  // namespace
}  // namespace ptp
