// Query-profiler unit and integration tests: Misra–Gries sketch guarantees
// against exact counts, HotKeyShard undercount bounds, communication-matrix
// conservation against the shuffle metrics, skew decomposition, thread-count
// bit-identity of the exported JSON, fault-recovery transparency, the
// EXPLAIN ANALYZE profile section, and the disabled fast path (which must
// not allocate).

#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "data/workloads.h"
#include "exec/cluster.h"
#include "exec/shuffle.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "obs/explain.h"
#include "obs/profile.h"
#include "obs/profile_report.h"
#include "obs/trace.h"
#include "plan/strategies.h"
#include "runtime/parallel.h"
#include "test_util.h"

// Global allocation counter for the disabled-fast-path test (same idiom as
// obs_test.cc): profiling that is switched off must not allocate.
namespace {
size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ptp {
namespace {

// ---------------------------------------------------------------------------
// MisraGries: sketch guarantees against exact reference counts.
// ---------------------------------------------------------------------------

/// Deterministic Zipf-ish stream: key k in [0, distinct) appears
/// round-robin with frequency proportional to 1 / (k + 1). Returns the
/// stream (fixed order) and writes the exact per-key counts.
std::vector<uint64_t> ZipfStream(size_t distinct, size_t repeats,
                                 std::map<uint64_t, uint64_t>* exact) {
  std::vector<uint64_t> stream;
  for (size_t r = 0; r < repeats; ++r) {
    for (uint64_t k = 0; k < distinct; ++k) {
      const size_t copies = repeats / (static_cast<size_t>(k) + 1) > r ? 1 : 0;
      if (copies == 0) continue;
      stream.push_back(k);
      ++(*exact)[k];
    }
  }
  return stream;
}

TEST(MisraGriesTest, StreamingBoundsOnZipfKeys) {
  std::map<uint64_t, uint64_t> exact;
  const std::vector<uint64_t> stream = ZipfStream(500, 200, &exact);
  MisraGries sketch(16);
  for (uint64_t k : stream) sketch.Add(k);

  EXPECT_EQ(sketch.total(), stream.size());
  EXPECT_LE(sketch.size(), sketch.capacity());
  // Deterministic shrink: error bound never exceeds n / (k + 1).
  EXPECT_LE(sketch.error_bound(),
            stream.size() / (sketch.capacity() + 1));
  for (const auto& [key, count] : exact) {
    const uint64_t est = sketch.LowerBound(key);
    EXPECT_LE(est, count) << "key " << key;
    EXPECT_GE(est + sketch.error_bound(), count) << "key " << key;
    if (count > sketch.error_bound()) {
      EXPECT_GT(est, 0u) << "heavy key " << key << " missing";
    }
  }
}

TEST(MisraGriesTest, MergePreservesBounds) {
  std::map<uint64_t, uint64_t> exact;
  const std::vector<uint64_t> stream = ZipfStream(300, 120, &exact);
  MisraGries a(8), b(8);
  for (size_t i = 0; i < stream.size(); ++i) {
    (i % 2 == 0 ? a : b).Add(stream[i]);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), stream.size());
  for (const auto& [key, count] : exact) {
    EXPECT_LE(a.LowerBound(key), count);
    EXPECT_GE(a.LowerBound(key) + a.error_bound(), count);
  }
}

TEST(MisraGriesTest, FromExactCountsWithinCapacityIsExact) {
  std::vector<MisraGries::Entry> counts = {{7, 100}, {9, 40}, {11, 3}};
  MisraGries sketch = MisraGries::FromCounts(counts);
  EXPECT_EQ(sketch.total(), 143u);
  EXPECT_EQ(sketch.error_bound(), 0u);
  EXPECT_EQ(sketch.LowerBound(7), 100u);
  EXPECT_EQ(sketch.LowerBound(9), 40u);
  EXPECT_EQ(sketch.LowerBound(11), 3u);
}

TEST(MisraGriesTest, FromCountsTruncationBooksHeaviestExcluded) {
  // 10 keys with counts 1..10, capacity 4: keeps {10,9,8,7}, books 6.
  std::vector<MisraGries::Entry> counts;
  for (uint64_t k = 1; k <= 10; ++k) counts.push_back({k, k});
  MisraGries sketch = MisraGries::FromCounts(counts, /*extra_total=*/5,
                                             /*carried_error=*/2,
                                             /*capacity=*/4);
  EXPECT_EQ(sketch.total(), 55u + 5u);
  EXPECT_EQ(sketch.error_bound(), 6u + 2u);
  EXPECT_EQ(sketch.size(), 4u);
  EXPECT_EQ(sketch.LowerBound(10), 10u);
  EXPECT_EQ(sketch.LowerBound(6), 0u);  // excluded, covered by the bound
  const auto top = sketch.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 10u);
  EXPECT_EQ(top[1].key, 9u);
}

// ---------------------------------------------------------------------------
// HotKeyShard: lower-bound estimates with a per-shard undercount bound.
// ---------------------------------------------------------------------------

TEST(HotKeyShardTest, TableSizingClampsToPowerOfTwo) {
  EXPECT_EQ(HotKeyShard(0).slots(), HotKeyShard::kMinSlots);
  EXPECT_EQ(HotKeyShard(100).slots(), 256u);  // pow2 >= 200
  EXPECT_EQ(HotKeyShard(size_t{1} << 20).slots(), HotKeyShard::kMaxSlots);
}

TEST(HotKeyShardTest, EstimatesAreLowerBoundsWithinEvictedBound) {
  std::map<uint64_t, uint64_t> exact;
  const std::vector<uint64_t> stream = ZipfStream(2000, 400, &exact);
  HotKeyShard shard(exact.size());
  for (uint64_t k : stream) shard.Add(k, Mix64(k));

  EXPECT_EQ(shard.total(), stream.size());
  std::map<uint64_t, uint64_t> estimates;
  for (const MisraGries::Entry& e : shard.Entries()) {
    estimates[e.key] = e.count;
  }
  for (const auto& [key, est] : estimates) {
    ASSERT_TRUE(exact.count(key)) << "phantom key " << key;
    EXPECT_LE(est, exact[key]) << "overcount on key " << key;
    EXPECT_GE(est + shard.evicted_bound(), exact[key]) << "key " << key;
  }
  // The hottest key must survive with a usable estimate: its frequency
  // dwarfs anything its slot's collisions can cancel.
  ASSERT_TRUE(estimates.count(0)) << "hottest key evicted";
  EXPECT_GE(estimates[0] + shard.evicted_bound(), exact[0]);
}

TEST(HotKeyShardTest, WeightedAddsMatchRepeatedAdds) {
  HotKeyShard ones(64), weighted(64);
  for (uint64_t k = 0; k < 40; ++k) {
    for (int i = 0; i < 5; ++i) ones.Add(k, Mix64(k));
    weighted.Add(k, Mix64(k), 5);
  }
  EXPECT_EQ(ones.total(), weighted.total());
  EXPECT_EQ(ones.Entries().size(), weighted.Entries().size());
}

// ---------------------------------------------------------------------------
// Shuffle profile: matrix conservation and skew reconciliation.
// ---------------------------------------------------------------------------

TEST(ShuffleProfileTest, MatrixConservesTuplesAndReconcilesSkew) {
  Rng rng(11);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 500, 60, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, 8);

  QueryProfile profile;
  QueryProfile* prev = SetActiveQueryProfile(&profile);
  ShuffleResult sr = HashShuffle(dist, {0}, 8, 7, "R ->h(x)").value();
  SetActiveQueryProfile(prev);

  const auto sections = profile.Snapshot();
  ASSERT_EQ(sections.size(), 1u);
  ASSERT_EQ(sections[0].shuffles.size(), 1u);
  const ShuffleProfile& sp = sections[0].shuffles[0];
  EXPECT_EQ(sp.label, "R ->h(x)");
  EXPECT_EQ(sp.key_kind, SketchKeyKind::kValue);
  EXPECT_EQ(sp.sample_stride, 1u);

  // Conservation: row totals are per-producer emission, column totals are
  // the received fragment sizes, and the grand total matches the metric.
  EXPECT_EQ(sp.matrix.Total(), sr.metrics.tuples_sent);
  const std::vector<uint64_t> rows = sp.matrix.RowTotals();
  ASSERT_EQ(rows.size(), dist.size());
  for (size_t p = 0; p < dist.size(); ++p) {
    EXPECT_EQ(rows[p], dist[p].NumTuples()) << "producer " << p;
  }
  const std::vector<uint64_t> cols = sp.matrix.ColTotals();
  ASSERT_EQ(cols.size(), sr.data.size());
  for (size_t w = 0; w < sr.data.size(); ++w) {
    EXPECT_EQ(cols[w], sr.data[w].NumTuples()) << "consumer " << w;
  }
  EXPECT_EQ(sp.matrix.TotalBytes(), sp.matrix.Total() * 2 * 8);

  // Every shuffled tuple fed the sketch (stride 1), and the decomposition
  // reproduces the metric skew exactly, split into two non-negative parts.
  EXPECT_EQ(sp.keys.total(), sr.metrics.tuples_sent);
  const SkewDecomposition d = DecomposeSkew(sp);
  EXPECT_DOUBLE_EQ(d.measured_skew, sr.metrics.consumer_skew);
  EXPECT_GE(d.data_component, 0.0);
  EXPECT_GE(d.hash_component, 0.0);
  EXPECT_NEAR(d.data_component + d.hash_component, d.measured_skew - 1.0,
              1e-12);
}

TEST(ShuffleProfileTest, SingleColumnSketchCountsMatchExactFrequencies) {
  // Small single-column-key shuffle: the sketch holds exact per-value
  // frequencies (stride 1, distinct values below sketch capacity).
  Rng rng(13);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 400, 20, &rng);
  std::map<uint64_t, uint64_t> exact;
  for (size_t row = 0; row < rel.NumTuples(); ++row) {
    ++exact[static_cast<uint64_t>(rel.At(row, 0))];
  }
  DistributedRelation dist = PartitionRoundRobin(rel, 4);

  QueryProfile profile;
  QueryProfile* prev = SetActiveQueryProfile(&profile);
  HashShuffle(dist, {0}, 4, 7, "t").value();
  SetActiveQueryProfile(prev);

  const auto sections = profile.Snapshot();
  const ShuffleProfile& sp = sections[0].shuffles[0];
  EXPECT_EQ(sp.keys.total(), rel.NumTuples());
  // Estimates are exact up to slot-collision slack (a couple of the 20
  // routing hashes may share a table slot), which the bound covers.
  for (const auto& [key, count] : exact) {
    EXPECT_LE(sp.keys.LowerBound(key), count) << "key " << key;
    EXPECT_GE(sp.keys.LowerBound(key) + sp.keys.error_bound(), count)
        << "key " << key;
  }
}

TEST(ShuffleProfileTest, LargeExchangeIsSampledDeterministically) {
  // Force sampling: more rows than kHotKeySampleBudget. The stride is a
  // power of two, recorded in the profile, and the sketch total is the
  // exact sample count times the stride.
  const size_t rows = kHotKeySampleBudget * 2 + 1000;
  Relation rel("R", Schema{"x", "y"});
  Rng rng(17);
  for (size_t i = 0; i < rows; ++i) {
    rel.AddTuple({static_cast<Value>(rng.Next() % 1000),
                  static_cast<Value>(i)});
  }
  DistributedRelation dist = PartitionRoundRobin(rel, 8);

  QueryProfile profile;
  QueryProfile* prev = SetActiveQueryProfile(&profile);
  HashShuffle(dist, {0}, 8, 7, "big").value();
  SetActiveQueryProfile(prev);

  const auto sections = profile.Snapshot();
  const ShuffleProfile& sp = sections[0].shuffles[0];
  EXPECT_EQ(sp.sample_stride, 4u);  // smallest pow2 with rows/S <= budget
  // Matrix is never sampled.
  EXPECT_EQ(sp.matrix.Total(), rows);
  // Every sampled row carries weight S: total() is within one stride of
  // the true row count per producer.
  EXPECT_GE(sp.keys.total(), rows - dist.size() * sp.sample_stride);
  EXPECT_LE(sp.keys.total(), rows + dist.size() * sp.sample_stride);
}

TEST(ShuffleProfileTest, BroadcastRecordsNoKeySketch) {
  Rng rng(19);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 50, 10, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, 4);

  QueryProfile profile;
  QueryProfile* prev = SetActiveQueryProfile(&profile);
  BroadcastShuffle(dist, 4, "Broadcast R").value();
  SetActiveQueryProfile(prev);

  const auto sections = profile.Snapshot();
  const ShuffleProfile& sp = sections[0].shuffles[0];
  EXPECT_EQ(sp.key_kind, SketchKeyKind::kNone);
  EXPECT_EQ(sp.matrix.Total(), 4 * rel.NumTuples());
  // Without a sketch the whole imbalance is attributed to hash/placement.
  const SkewDecomposition d = DecomposeSkew(sp);
  EXPECT_DOUBLE_EQ(d.data_component, 0.0);
}

// ---------------------------------------------------------------------------
// Skew decomposition arithmetic.
// ---------------------------------------------------------------------------

ShuffleProfile HandBuiltShuffle(std::vector<uint64_t> consumer_loads,
                                std::vector<MisraGries::Entry> keys) {
  ShuffleProfile sp;
  sp.label = "hand-built";
  sp.matrix.Init(1, consumer_loads.size(), 2);
  uint64_t total = 0;
  for (size_t c = 0; c < consumer_loads.size(); ++c) {
    sp.matrix.At(0, c) = consumer_loads[c];
    total += consumer_loads[c];
  }
  if (!keys.empty()) {
    sp.key_kind = SketchKeyKind::kValue;
    sp.keys = MisraGries::FromCounts(std::move(keys));
  }
  return sp;
}

TEST(SkewDecompositionTest, HotKeyExplainsDataSkew) {
  // 4 workers, 100 tuples: one key of frequency 70 pins worker 0 at 70.
  // avg = 25, data floor = 70 -> data (70-25)/25 = 1.8, hash 0.
  const SkewDecomposition d = DecomposeSkew(
      HandBuiltShuffle({70, 10, 10, 10}, {{42, 70}, {1, 10}, {2, 10}}));
  EXPECT_DOUBLE_EQ(d.measured_skew, 70.0 / 25.0);
  EXPECT_DOUBLE_EQ(d.data_component, 1.8);
  EXPECT_DOUBLE_EQ(d.hash_component, 0.0);
  EXPECT_TRUE(d.has_top_key);
  EXPECT_EQ(d.top_key, 42u);
}

TEST(SkewDecompositionTest, CollisionsExplainHashSkew) {
  // Same loads but no key heavier than the average: the imbalance must be
  // collisions / placement, not data.
  const SkewDecomposition d = DecomposeSkew(
      HandBuiltShuffle({70, 10, 10, 10}, {{1, 25}, {2, 25}, {3, 25},
                                          {4, 25}}));
  EXPECT_DOUBLE_EQ(d.data_component, 0.0);
  EXPECT_DOUBLE_EQ(d.hash_component, d.measured_skew - 1.0);
}

TEST(SkewDecompositionTest, BalancedShuffleHasNoComponents) {
  const SkewDecomposition d =
      DecomposeSkew(HandBuiltShuffle({25, 25, 25, 25}, {{1, 100}}));
  EXPECT_DOUBLE_EQ(d.measured_skew, 1.0);
  EXPECT_DOUBLE_EQ(d.data_component, 0.0);
  EXPECT_DOUBLE_EQ(d.hash_component, 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end: strategies, fault recovery, thread-count bit-identity.
// ---------------------------------------------------------------------------

WorkloadScale TinyScale() {
  WorkloadScale scale;
  scale.twitter.num_nodes = 400;
  scale.twitter.num_edges = 2500;
  scale.twitter.zipf_exponent = 0.7;
  scale.freebase_scale = 0.08;
  scale.seed = 99;
  return scale;
}

/// Runs one strategy with a profile installed (optionally under a fault
/// schedule) and returns the profile JSON without timings plus the result.
struct ProfiledRun {
  StrategyResult result;
  std::string profile_json;
  std::vector<StrategyProfile> sections;
};

ProfiledRun RunProfiled(int threads, const NormalizedQuery& q,
                        ShuffleKind shuffle, JoinKind join,
                        const StrategyOptions& opts,
                        const std::string& faults = "") {
  runtime::SetThreads(threads);
  QueryProfile profile;
  QueryProfile* prev_profile = SetActiveQueryProfile(&profile);
  FaultInjector* prev_inj = nullptr;
  std::unique_ptr<FaultInjector> injector;
  if (!faults.empty()) {
    auto plan = FaultPlan::Parse(faults);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    injector = std::make_unique<FaultInjector>(std::move(plan).value());
    prev_inj = SetActiveFaultInjector(injector.get());
  }
  auto result = RunStrategy(q, shuffle, join, opts);
  if (injector != nullptr) SetActiveFaultInjector(prev_inj);
  SetActiveQueryProfile(prev_profile);
  runtime::SetThreads(0);
  EXPECT_TRUE(result.ok()) << result.status().ToString();

  ProfiledRun run;
  run.result = std::move(result).value();
  ProfileReportOptions report;
  report.include_timings = false;
  run.profile_json = ProfileJsonString(profile, report);
  run.sections = profile.Snapshot();
  return run;
}

TEST(ProfileEndToEndTest, ProfileIsBitIdenticalAcrossThreadCounts) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;

  for (const auto& [shuffle, join] : AllStrategies()) {
    const std::string name = StrategyName(shuffle, join);
    ProfiledRun one = RunProfiled(1, wl->normalized, shuffle, join, opts);
    ProfiledRun eight = RunProfiled(8, wl->normalized, shuffle, join, opts);
    EXPECT_EQ(one.profile_json, eight.profile_json)
        << name << ": profile depends on thread count";
  }
}

TEST(ProfileEndToEndTest, RecoveredRunProfilesIdenticallyToCleanRun) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;

  ProfiledRun clean =
      RunProfiled(1, wl->normalized, ShuffleKind::kRegular, JoinKind::kHashJoin,
                  opts);
  ProfiledRun faulted =
      RunProfiled(8, wl->normalized, ShuffleKind::kRegular, JoinKind::kHashJoin,
                  opts, "crash@worker=3");

  // Failed delivery attempts leave no profile entries: the recovered run's
  // matrices and sketches are identical to the clean run's...
  ASSERT_EQ(clean.sections.size(), faulted.sections.size());
  ASSERT_EQ(clean.sections[0].shuffles.size(),
            faulted.sections[0].shuffles.size());
  for (size_t s = 0; s < clean.sections[0].shuffles.size(); ++s) {
    const ShuffleProfile& cs = clean.sections[0].shuffles[s];
    const ShuffleProfile& fs = faulted.sections[0].shuffles[s];
    EXPECT_EQ(cs.matrix.tuples, fs.matrix.tuples) << cs.label;
    EXPECT_EQ(cs.keys.total(), fs.keys.total()) << cs.label;
  }

  // ...while the retry epochs record the recovery: attempts >= 1, and the
  // booked virtual backoff adds up to the metric.
  EXPECT_FALSE(faulted.sections[0].retry_epochs.empty());
  double backoff = 0;
  for (const RetryEpoch& e : faulted.sections[0].retry_epochs) {
    EXPECT_GE(e.attempt, 1);
    EXPECT_GT(e.backoff_seconds, 0.0);
    backoff += e.backoff_seconds;
  }
  EXPECT_NEAR(backoff, faulted.result.metrics.backoff_seconds, 1e-12);
  EXPECT_TRUE(clean.sections[0].retry_epochs.empty());
}

TEST(ProfileEndToEndTest, StageTimelinesCoverWorkersAndExportCounters) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;

  runtime::SetThreads(1);
  QueryProfile profile;
  TraceSession trace;
  QueryProfile* prev_profile = SetActiveQueryProfile(&profile);
  TraceSession* prev_trace = SetActiveTraceSession(&trace);
  auto result = RunStrategy(wl->normalized, ShuffleKind::kRegular,
                            JoinKind::kHashJoin, opts);
  SetActiveTraceSession(prev_trace);
  SetActiveQueryProfile(prev_profile);
  runtime::SetThreads(0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const auto sections = profile.Snapshot();
  ASSERT_EQ(sections.size(), 1u);
  ASSERT_FALSE(sections[0].stages.empty());
  for (const StageProfile& stage : sections[0].stages) {
    EXPECT_EQ(stage.busy_seconds.size(),
              static_cast<size_t>(opts.num_workers))
        << stage.label;
    double busy = 0;
    for (double b : stage.busy_seconds) busy += b;
    EXPECT_GE(busy, 0.0);
  }
  // The per-worker busy timeline is exported as Perfetto counter tracks.
  EXPECT_NE(trace.ToJson().find("profile.busy_seconds"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Report output: JSON round-trip and the EXPLAIN ANALYZE section.
// ---------------------------------------------------------------------------

TEST(ProfileReportTest, JsonRoundTripsThroughParser) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  ProfiledRun run = RunProfiled(1, wl->normalized, ShuffleKind::kRegular,
                                JoinKind::kHashJoin, opts);

  auto doc = ParseJson(run.profile_json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->NumberOr("version", 0), kProfileJsonVersion);
  const JsonValue* strategies = doc->Find("strategies");
  ASSERT_NE(strategies, nullptr);
  ASSERT_EQ(strategies->array.size(), 1u);
  const JsonValue& strat = strategies->array[0];
  const JsonValue* shuffles = strat.Find("shuffles");
  ASSERT_NE(shuffles, nullptr);
  EXPECT_FALSE(shuffles->array.empty());
  for (const JsonValue& sh : shuffles->array) {
    const JsonValue* keys = sh.Find("keys");
    if (keys == nullptr) continue;  // kNone shuffles carry no sketch
    EXPECT_GE(keys->NumberOr("sample_stride", 0), 1.0);
    EXPECT_GE(keys->NumberOr("total", -1), 0.0);
  }
}

TEST(ProfileReportTest, ExplainAnalyzeAppendsProfileSection) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;

  runtime::SetThreads(1);
  QueryProfile profile;
  QueryProfile* prev = SetActiveQueryProfile(&profile);
  auto result = RunStrategy(wl->normalized, ShuffleKind::kRegular,
                            JoinKind::kHashJoin, opts);
  SetActiveQueryProfile(prev);
  runtime::SetThreads(0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ExplainOptions expl;
  expl.include_timings = false;
  expl.profile = &profile;
  const std::string with = ExplainAnalyzeText("RS_HJ", *result, expl);
  expl.profile = nullptr;
  const std::string without = ExplainAnalyzeText("RS_HJ", *result, expl);

  EXPECT_EQ(without.find("profile:"), std::string::npos);
  EXPECT_NE(with.find("profile:"), std::string::npos);
  EXPECT_NE(with.find("top keys"), std::string::npos);
  EXPECT_NE(with.find("skew: measured="), std::string::npos);
  // Deterministic mode drops the utilization bars but keeps the matrices.
  EXPECT_EQ(with.find("utilization:"), std::string::npos);
}

TEST(ProfileReportTest, GoldenSectionForHandBuiltProfile) {
  // Fully hand-built section: the exact text is deterministic, so a golden
  // comparison pins the report format.
  StrategyProfile section;
  section.name = "RS_HJ";
  ShuffleProfile sp = HandBuiltShuffle({70, 10, 10, 10},
                                       {{42, 70}, {7, 20}, {9, 10}});
  section.shuffles.push_back(std::move(sp));
  StageProfile stage;
  stage.label = "probe R";
  stage.busy_seconds = {0.5, 0.5};
  stage.wall_seconds = 0.5;
  stage.output_tuples = 100;
  section.stages.push_back(std::move(stage));
  section.retry_epochs.push_back({"probe R", 1, 0.25});

  ProfileReportOptions options;
  options.include_timings = false;
  options.top_channels = 2;
  options.top_keys = 2;
  const std::string text = ProfileSectionText(section, options);
  const std::string golden =
      "  profile:\n"
      "    shuffle hand-built: 1x4 channels, 100 tuples\n"
      "      top channels: 0->0 70 | 0->1 10\n"
      "      skew: measured=2.80 data=1.80 hash=0.00 (100% data / 0% hash)\n"
      "      top keys: 42~70 | 7~20 (error<=0 of 100)\n"
      "    stage probe R: out=100\n"
      "    retry probe R attempt 1: backoff=0.250s\n";
  EXPECT_EQ(text, golden);
}

// ---------------------------------------------------------------------------
// Disabled fast path: probing an absent profile must not allocate.
// ---------------------------------------------------------------------------

TEST(ProfileDisabledTest, NullProfileHooksDoNotAllocate) {
  SetActiveQueryProfile(nullptr);
  const size_t before = g_alloc_count;
  uint64_t sink = 0;
  for (int i = 0; i < 1000; ++i) {
    if (QueryProfile* p = ActiveQueryProfile()) {
      (void)p;
      ++sink;  // never taken
    }
  }
  EXPECT_EQ(sink, 0u);
  EXPECT_EQ(g_alloc_count, before)
      << "disabled profiler probe must not allocate";
}

}  // namespace
}  // namespace ptp
