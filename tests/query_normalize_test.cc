#include "query/normalize_text.h"

#include "gtest/gtest.h"

namespace ptp {
namespace {

TEST(NormalizeQueryTextTest, CanonicalFormIsAFixedPoint) {
  const std::string canonical = "t(x, y, z) :- R(x, y), S(y, z), U(z, x)";
  EXPECT_EQ(NormalizeQueryText(canonical), canonical);
}

TEST(NormalizeQueryTextTest, WhitespaceCollapsed) {
  EXPECT_EQ(NormalizeQueryText("  T( x ,\ty )   :-   R(x,y)  "),
            "t(x, y) :- R(x, y)");
  EXPECT_EQ(NormalizeQueryText("T(x,y):-R(x,y)"), "t(x, y) :- R(x, y)");
}

TEST(NormalizeQueryTextTest, TrailingDotDropped) {
  EXPECT_EQ(NormalizeQueryText("T(x) :- R(x, y)."),
            NormalizeQueryText("T(x) :- R(x, y)"));
}

TEST(NormalizeQueryTextTest, AndSeparatorRewrittenToComma) {
  EXPECT_EQ(NormalizeQueryText("T(x,z) :- R(x,y) AND S(y,z)."),
            NormalizeQueryText("T(x,z) :- R(x,y), S(y,z)."));
  EXPECT_EQ(NormalizeQueryText("T(x,z) :- R(x,y) and S(y,z)."),
            NormalizeQueryText("T(x,z) :- R(x,y), S(y,z)."));
}

TEST(NormalizeQueryTextTest, BodyAtomOrderCanonicalized) {
  EXPECT_EQ(NormalizeQueryText("T(x,y,z) :- S(y,z), U(z,x), R(x,y)."),
            NormalizeQueryText("T(x,y,z) :- R(x,y), S(y,z), U(z,x)."));
}

TEST(NormalizeQueryTextTest, PredicatesSortedAfterAtoms) {
  EXPECT_EQ(NormalizeQueryText("Q(x) :- y < 5, R(x, y), x > 2."),
            "q(x) :- R(x, y), x > 2, y < 5");
}

TEST(NormalizeQueryTextTest, DoubleEqualsRewritten) {
  EXPECT_EQ(NormalizeQueryText("Q(x) :- R(x, y), x == 3."),
            NormalizeQueryText("Q(x) :- R(x, y), x = 3."));
}

TEST(NormalizeQueryTextTest, HeadNameCaseFolded) {
  EXPECT_EQ(NormalizeQueryText("ANSWER(x) :- R(x, y)"),
            NormalizeQueryText("answer(x) :- R(x, y)"));
}

TEST(NormalizeQueryTextTest, SemanticCasePreserved) {
  // Variable and body-relation case is meaning-bearing: these are four
  // genuinely different queries and must not collide.
  EXPECT_NE(NormalizeQueryText("q(x) :- R(x, y)"),
            NormalizeQueryText("q(x) :- r(x, y)"));
  EXPECT_NE(NormalizeQueryText("q(x) :- R(x, y)"),
            NormalizeQueryText("q(x) :- R(x, Y)"));
}

TEST(NormalizeQueryTextTest, ConstantsAndStringsPreserved) {
  EXPECT_EQ(NormalizeQueryText("Q(x) :- R(x, 42), S(x, -7)"),
            "q(x) :- R(x, 42), S(x, -7)");
  EXPECT_EQ(NormalizeQueryText("Q(x) :- Name(x, \"Joe  Pesci\")"),
            "q(x) :- Name(x, \"Joe  Pesci\")");
}

TEST(NormalizeQueryTextTest, DifferentQueriesStayDifferent) {
  EXPECT_NE(NormalizeQueryText("T(x) :- R(x, y), S(y, x)"),
            NormalizeQueryText("T(x) :- R(x, y), S(x, y)"));
  EXPECT_NE(NormalizeQueryText("T(x) :- R(x, y)"),
            NormalizeQueryText("T(x, y) :- R(x, y)"));
}

TEST(NormalizeQueryTextTest, UnparsableTextFallsBackToWhitespaceCollapse) {
  // No ':-': the structural pass bails; whitespace still collapses and the
  // trailing dot still drops, so the key stays deterministic.
  EXPECT_EQ(NormalizeQueryText("  not   a\tquery . "), "not a query");
  EXPECT_EQ(NormalizeQueryText(""), "");
  // Trailing garbage after a valid body also falls back (parser would
  // reject it too).
  EXPECT_EQ(NormalizeQueryText("T(x) :- R(x) extra"), "T(x) :- R(x) extra");
}

}  // namespace
}  // namespace ptp
