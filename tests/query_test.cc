#include "query/query.h"

#include "gtest/gtest.h"
#include "storage/catalog.h"

namespace ptp {
namespace {

Catalog TwoRelationCatalog() {
  Catalog c;
  Relation r("R", Schema{"c1", "c2"});
  r.AddTuple({1, 2});
  r.AddTuple({2, 3});
  r.AddTuple({3, 3});
  c.Put(std::move(r));
  Relation s("S", Schema{"c1", "c2"});
  s.AddTuple({2, 10});
  s.AddTuple({3, 20});
  c.Put(std::move(s));
  return c;
}

ConjunctiveQuery PathQuery() {
  Atom r{"R", {Term::Var("x"), Term::Var("y")}};
  Atom s{"S", {Term::Var("y"), Term::Var("z")}};
  return ConjunctiveQuery("Q", {"x", "z"}, {r, s});
}

TEST(AtomTest, VariablesDeduplicated) {
  Atom a{"R", {Term::Var("x"), Term::Var("y"), Term::Var("x")}};
  EXPECT_EQ(a.Variables(), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(a.HasVariable("y"));
  EXPECT_FALSE(a.HasVariable("z"));
}

TEST(PredicateTest, EvalAllOps) {
  EXPECT_TRUE(Predicate::Eval(1, CmpOp::kLt, 2));
  EXPECT_FALSE(Predicate::Eval(2, CmpOp::kLt, 2));
  EXPECT_TRUE(Predicate::Eval(2, CmpOp::kLe, 2));
  EXPECT_TRUE(Predicate::Eval(3, CmpOp::kGt, 2));
  EXPECT_TRUE(Predicate::Eval(2, CmpOp::kGe, 2));
  EXPECT_TRUE(Predicate::Eval(2, CmpOp::kEq, 2));
  EXPECT_TRUE(Predicate::Eval(1, CmpOp::kNe, 2));
}

TEST(ConjunctiveQueryTest, VariablesInFirstOccurrenceOrder) {
  ConjunctiveQuery q = PathQuery();
  EXPECT_EQ(q.variables(), (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(q.JoinVariables(), (std::vector<std::string>{"y"}));
  EXPECT_EQ(q.VariableIndex("z"), 2);
  EXPECT_EQ(q.VariableIndex("nope"), -1);
}

TEST(ConjunctiveQueryTest, ValidateCatchesBadArity) {
  Catalog c = TwoRelationCatalog();
  Atom bad{"R", {Term::Var("x")}};  // R has arity 2
  ConjunctiveQuery q("Q", {"x"}, {bad});
  EXPECT_FALSE(q.Validate(c).ok());
}

TEST(ConjunctiveQueryTest, ValidateCatchesUnknownRelation) {
  Catalog c = TwoRelationCatalog();
  Atom bad{"Nope", {Term::Var("x"), Term::Var("y")}};
  ConjunctiveQuery q("Q", {"x"}, {bad});
  EXPECT_EQ(q.Validate(c).code(), StatusCode::kNotFound);
}

TEST(ConjunctiveQueryTest, ValidateCatchesFreeHeadVariable) {
  Catalog c = TwoRelationCatalog();
  Atom r{"R", {Term::Var("x"), Term::Var("y")}};
  ConjunctiveQuery q("Q", {"w"}, {r});
  EXPECT_FALSE(q.Validate(c).ok());
}

TEST(NormalizeTest, PlainAtomsPassThrough) {
  Catalog c = TwoRelationCatalog();
  auto nq = Normalize(PathQuery(), c);
  ASSERT_TRUE(nq.ok());
  ASSERT_EQ(nq->atoms.size(), 2u);
  EXPECT_EQ(nq->atoms[0].variables, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(nq->atoms[0].relation.NumTuples(), 3u);
  // Schema names are rewritten to variable names.
  EXPECT_EQ(nq->atoms[0].relation.schema().names(),
            (std::vector<std::string>{"x", "y"}));
}

TEST(NormalizeTest, ConstantSelectionIsPushedDown) {
  Catalog c = TwoRelationCatalog();
  Atom r{"R", {Term::Var("x"), Term::Const(3)}};
  ConjunctiveQuery q("Q", {"x"}, {r});
  auto nq = Normalize(q, c);
  ASSERT_TRUE(nq.ok());
  // Rows with c2 == 3: (2,3) and (3,3) -> projected to x.
  EXPECT_EQ(nq->atoms[0].relation.NumTuples(), 2u);
  EXPECT_EQ(nq->atoms[0].variables, (std::vector<std::string>{"x"}));
}

TEST(NormalizeTest, RepeatedVariableBecomesFilter) {
  Catalog c = TwoRelationCatalog();
  Atom r{"R", {Term::Var("x"), Term::Var("x")}};
  ConjunctiveQuery q("Q", {"x"}, {r});
  auto nq = Normalize(q, c);
  ASSERT_TRUE(nq.ok());
  // Only (3,3) has c1 == c2.
  ASSERT_EQ(nq->atoms[0].relation.NumTuples(), 1u);
  EXPECT_EQ(nq->atoms[0].relation.At(0, 0), 3);
}

TEST(NormalizeTest, HeadAndPredicatesPreserved) {
  Catalog c = TwoRelationCatalog();
  ConjunctiveQuery q(
      "Q", {"x", "z"},
      {Atom{"R", {Term::Var("x"), Term::Var("y")}},
       Atom{"S", {Term::Var("y"), Term::Var("z")}}},
      {Predicate{Term::Var("x"), CmpOp::kLt, Term::Var("z")}});
  auto nq = Normalize(q, c);
  ASSERT_TRUE(nq.ok());
  EXPECT_EQ(nq->head_vars, (std::vector<std::string>{"x", "z"}));
  ASSERT_EQ(nq->predicates.size(), 1u);
  EXPECT_EQ(nq->Variables(), (std::vector<std::string>{"x", "y", "z"}));
}

TEST(QueryToStringTest, RendersDatalog) {
  ConjunctiveQuery q = PathQuery();
  EXPECT_EQ(q.ToString(), "Q(x, z) :- R(x, y), S(y, z).");
}

}  // namespace
}  // namespace ptp
