#include "bench_util/report.h"

#include "common/str_util.h"

#include "gtest/gtest.h"

namespace ptp {
namespace {

TEST(WithCommasTest, GroupsDigits) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(13371468), "13,371,468");
}

TEST(FormatSecondsTest, AdaptivePrecision) {
  EXPECT_EQ(FormatSeconds(0.00123), "0.0012s");
  EXPECT_EQ(FormatSeconds(1.234), "1.234s");
  EXPECT_EQ(FormatSeconds(42.0), "42.0s");
}

TEST(FormatMillionsTest, SwitchesUnits) {
  EXPECT_EQ(FormatMillions(999), "999");
  EXPECT_EQ(FormatMillions(13371468), "13.37M");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xxxxx", "y"});
  std::string out = t.ToString();
  // Both rows have the same width up to trailing spaces.
  auto lines = SplitAndTrim(out, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(out.find("a      long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxx  y"), std::string::npos);
}

TEST(PearsonCorrelationTest, KnownValues) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {1, -1, 1, -1}), -0.4472,
              1e-3);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

}  // namespace
}  // namespace ptp
