// Memory-meter and estimate-feedback tests: MemStats/ScopedMemCharge
// invariants, stage folding in worker-index order, soft-budget overage
// accounting, thread-count bit-identity of the byte accounting,
// recovered-vs-clean peak identity, shuffle-byte reconciliation against the
// profiler matrices and shuffle counters, QueryMetrics::Absorb byte
// semantics, feedback-store JSON round-trip, the advisor's feedback replay,
// the EXPLAIN ANALYZE memory section (golden), and the disabled fast path
// (which must not allocate).

#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "data/workloads.h"
#include "exec/shuffle.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/explain.h"
#include "obs/feedback.h"
#include "obs/profile.h"
#include "obs/resource.h"
#include "plan/advisor.h"
#include "plan/strategies.h"
#include "query/parser.h"
#include "runtime/parallel.h"
#include "storage/catalog.h"
#include "test_util.h"

// Global allocation counter for the disabled-fast-path test (same idiom as
// profile_test.cc): metering that is switched off must not allocate.
namespace {
size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ptp {
namespace {

// ---------------------------------------------------------------------------
// MemStats / ScopedMemCharge invariants.
// ---------------------------------------------------------------------------

TEST(MemStatsTest, ChargeTracksLiveAndPeakReleaseClamps) {
  MemStats s;
  s.Charge(MemCategory::kHashTable, 100);
  s.Charge(MemCategory::kIntermediate, 50);
  EXPECT_EQ(s.live, 150u);
  EXPECT_EQ(s.peak, 150u);
  EXPECT_EQ(s.TotalCharged(), 150u);
  s.Release(120);
  EXPECT_EQ(s.live, 30u);
  EXPECT_EQ(s.peak, 150u);  // high-water mark survives releases
  s.Release(1000);          // over-release clamps, never wraps
  EXPECT_EQ(s.live, 0u);
  EXPECT_EQ(s.charged[static_cast<size_t>(MemCategory::kHashTable)], 100u);
  s.Reset();
  EXPECT_EQ(s.TotalCharged(), 0u);
  EXPECT_EQ(s.peak, 0u);
}

TEST(ScopedMemChargeTest, RaiiReleasesAndMoveTransfersOwnership) {
  ResourceMeter meter;
  ResourceMeter* prev = SetActiveResourceMeter(&meter);
  meter.BeginQuery("q");
  {
    ScopedMemCharge a(MemCategory::kTrie, 64);
    EXPECT_EQ(a.bytes(), 64u);
    ScopedMemCharge b = std::move(a);  // a must not double-release
    EXPECT_EQ(a.bytes(), 0u);
    EXPECT_EQ(b.bytes(), 64u);
  }
  SetActiveResourceMeter(prev);
  const QueryMemory* q = meter.FindQuery("q");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->live_bytes, 0u);
  EXPECT_EQ(q->peak_bytes, 64u);
  EXPECT_EQ(q->charged[static_cast<size_t>(MemCategory::kTrie)], 64u);
}

TEST(ResourceMeterTest, BookStageFoldsWorkerPeaksIntoQueryHighWater) {
  ResourceMeter meter;
  meter.BeginQuery("q");
  meter.Charge(MemCategory::kIntermediate, 100);  // coordinator-held bytes

  std::vector<MemStats> workers(3);
  workers[0].Charge(MemCategory::kHashTable, 10);
  workers[1].Charge(MemCategory::kHashTable, 30);
  workers[1].Release(30);  // released, but the peak is what counts
  workers[2].Charge(MemCategory::kSortScratch, 5);
  const uint64_t stage_peak = meter.BookStageMemory("join_1", workers);
  EXPECT_EQ(stage_peak, 45u);

  const QueryMemory* q = meter.FindQuery("q");
  ASSERT_NE(q, nullptr);
  // Query high-water = coordinator live + the stage's concurrent peaks.
  EXPECT_EQ(q->peak_bytes, 145u);
  ASSERT_EQ(q->stages.size(), 1u);
  EXPECT_EQ(q->stages[0].label, "join_1");
  EXPECT_EQ(q->stages[0].peak_bytes, 45u);
  EXPECT_EQ(q->stages[0].worker_peak_bytes,
            (std::vector<uint64_t>{10, 30, 5}));
  EXPECT_EQ(q->charged[static_cast<size_t>(MemCategory::kHashTable)], 40u);
  EXPECT_EQ(q->charged[static_cast<size_t>(MemCategory::kSortScratch)], 5u);
}

TEST(ResourceMeterTest, SoftBudgetRecordsOverageAndCountsOnce) {
  CounterRegistry reg;
  CounterRegistry* prev = SetActiveCounterRegistry(&reg);
  ResourceMeter meter(/*budget_bytes=*/100);
  meter.BeginQuery("q");
  meter.Charge(MemCategory::kIntermediate, 150);
  meter.Charge(MemCategory::kIntermediate, 30);  // deeper overage
  SetActiveCounterRegistry(prev);

  const QueryMemory* q = meter.FindQuery("q");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->max_overage_bytes, 80u);
  uint64_t overruns = 0;
  for (const auto& [name, value] : reg.CounterSnapshot()) {
    if (name == "mem.budget_overruns") overruns = value;
  }
  EXPECT_EQ(overruns, 1u) << "overrun warning must fire once per query";
  const std::string text = MemorySectionText(*q);
  EXPECT_NE(text.find("budget 100 B EXCEEDED by 80 B (soft limit)"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// End-to-end: determinism of the byte accounting.
// ---------------------------------------------------------------------------

WorkloadScale TinyScale() {
  WorkloadScale scale;
  scale.twitter.num_nodes = 400;
  scale.twitter.num_edges = 2500;
  scale.twitter.zipf_exponent = 0.7;
  scale.freebase_scale = 0.08;
  scale.seed = 99;
  return scale;
}

struct MeteredRun {
  StrategyResult result;
  std::vector<QueryMemory> sections;
};

MeteredRun RunMetered(int threads, const NormalizedQuery& q,
                      ShuffleKind shuffle, JoinKind join,
                      const StrategyOptions& opts,
                      const std::string& faults = "") {
  runtime::SetThreads(threads);
  ResourceMeter meter;
  ResourceMeter* prev_meter = SetActiveResourceMeter(&meter);
  FaultInjector* prev_inj = nullptr;
  std::unique_ptr<FaultInjector> injector;
  if (!faults.empty()) {
    auto plan = FaultPlan::Parse(faults);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    injector = std::make_unique<FaultInjector>(std::move(plan).value());
    prev_inj = SetActiveFaultInjector(injector.get());
  }
  auto result = RunStrategy(q, shuffle, join, opts);
  if (injector != nullptr) SetActiveFaultInjector(prev_inj);
  SetActiveResourceMeter(prev_meter);
  runtime::SetThreads(0);
  EXPECT_TRUE(result.ok()) << result.status().ToString();

  MeteredRun run;
  run.result = std::move(result).value();
  run.sections = meter.Snapshot();
  return run;
}

TEST(ResourceEndToEndTest, AccountingIsBitIdenticalAcrossThreadCounts) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;

  for (const auto& [shuffle, join] : AllStrategies()) {
    const std::string name = StrategyName(shuffle, join);
    MeteredRun one = RunMetered(1, wl->normalized, shuffle, join, opts);
    MeteredRun eight = RunMetered(8, wl->normalized, shuffle, join, opts);

    ASSERT_EQ(one.sections.size(), 1u) << name;
    ASSERT_EQ(eight.sections.size(), 1u) << name;
    const QueryMemory& a = one.sections[0];
    const QueryMemory& b = eight.sections[0];
    EXPECT_GT(a.peak_bytes, 0u) << name;
    EXPECT_EQ(a.peak_bytes, b.peak_bytes) << name;
    EXPECT_EQ(a.TotalCharged(), b.TotalCharged()) << name;
    for (size_t c = 0; c < kNumMemCategories; ++c) {
      EXPECT_EQ(a.charged[c], b.charged[c])
          << name << " category "
          << MemCategoryName(static_cast<MemCategory>(c));
    }
    ASSERT_EQ(a.stages.size(), b.stages.size()) << name;
    for (size_t s = 0; s < a.stages.size(); ++s) {
      EXPECT_EQ(a.stages[s].label, b.stages[s].label);
      EXPECT_EQ(a.stages[s].peak_bytes, b.stages[s].peak_bytes)
          << name << "/" << a.stages[s].label;
      EXPECT_EQ(a.stages[s].worker_peak_bytes, b.stages[s].worker_peak_bytes)
          << name << "/" << a.stages[s].label;
    }
    // The booked bytes surface identically in the result metrics.
    EXPECT_EQ(one.result.metrics.peak_bytes, eight.result.metrics.peak_bytes)
        << name;
    EXPECT_EQ(one.result.metrics.peak_bytes,
              static_cast<size_t>(a.peak_bytes))
        << name;
  }
}

TEST(ResourceEndToEndTest, RecoveredRunPeaksMatchCleanRun) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;

  MeteredRun clean = RunMetered(1, wl->normalized, ShuffleKind::kRegular,
                                JoinKind::kHashJoin, opts);
  MeteredRun faulted = RunMetered(8, wl->normalized, ShuffleKind::kRegular,
                                  JoinKind::kHashJoin, opts,
                                  "crash@worker=3");
  size_t retries = 0;
  for (const StageMetrics& s : faulted.result.metrics.stages)
    retries += s.retries;
  for (const ShuffleMetrics& s : faulted.result.metrics.shuffles)
    retries += s.retries;
  ASSERT_GE(retries, 1u) << "fault schedule did not trigger a recovery";

  // Only the successful attempt of every barrier is booked: recovered runs
  // report the same peaks (stage and query) as a clean run. Cumulative
  // charges may differ — abandoned delivery attempts charge and release.
  ASSERT_EQ(clean.sections.size(), faulted.sections.size());
  const QueryMemory& c = clean.sections[0];
  const QueryMemory& f = faulted.sections[0];
  EXPECT_EQ(c.peak_bytes, f.peak_bytes);
  ASSERT_EQ(c.stages.size(), f.stages.size());
  for (size_t s = 0; s < c.stages.size(); ++s) {
    EXPECT_EQ(c.stages[s].label, f.stages[s].label);
    EXPECT_EQ(c.stages[s].peak_bytes, f.stages[s].peak_bytes)
        << c.stages[s].label;
    EXPECT_EQ(c.stages[s].worker_peak_bytes, f.stages[s].worker_peak_bytes)
        << c.stages[s].label;
    for (size_t cat = 0; cat < kNumMemCategories; ++cat) {
      EXPECT_EQ(c.stages[s].charged[cat], f.stages[s].charged[cat])
          << c.stages[s].label;
    }
  }
  EXPECT_EQ(clean.result.metrics.peak_bytes,
            faulted.result.metrics.peak_bytes);
}

TEST(ResourceEndToEndTest, ShuffleBytesReconcileWithProfilerAndCounters) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;

  runtime::SetThreads(1);
  ResourceMeter meter;
  CounterRegistry reg;
  QueryProfile profile;
  ResourceMeter* prev_meter = SetActiveResourceMeter(&meter);
  CounterRegistry* prev_reg = SetActiveCounterRegistry(&reg);
  QueryProfile* prev_profile = SetActiveQueryProfile(&profile);
  auto result = RunStrategy(wl->normalized, ShuffleKind::kRegular,
                            JoinKind::kHashJoin, opts);
  SetActiveQueryProfile(prev_profile);
  SetActiveCounterRegistry(prev_reg);
  SetActiveResourceMeter(prev_meter);
  runtime::SetThreads(0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  uint64_t mem_shuffle = 0;
  uint64_t bytes_sent = 0;
  for (const auto& [name, value] : reg.CounterSnapshot()) {
    if (name == "mem.shuffle_buffer_bytes") mem_shuffle = value;
    if (name == "shuffle.bytes_sent") bytes_sent = value;
  }
  ASSERT_GT(bytes_sent, 0u);
  // The meter's shuffle-buffer charge is tuples_sent * arity * 8 per
  // exchange — definitionally the shuffle.bytes_sent counter, and (on
  // unsampled runs) the profiler's per-channel matrix byte totals.
  EXPECT_EQ(mem_shuffle, bytes_sent);
  const auto sections = profile.Snapshot();
  ASSERT_EQ(sections.size(), 1u);
  uint64_t matrix_bytes = 0;
  for (const ShuffleProfile& sp : sections[0].shuffles) {
    matrix_bytes += sp.matrix.TotalBytes();
  }
  EXPECT_EQ(matrix_bytes, bytes_sent);
  const auto mem_sections = meter.Snapshot();
  ASSERT_EQ(mem_sections.size(), 1u);
  EXPECT_EQ(mem_sections[0]
                .charged[static_cast<size_t>(MemCategory::kShuffleBuffer)],
            bytes_sent);
}

// ---------------------------------------------------------------------------
// QueryMetrics byte semantics.
// ---------------------------------------------------------------------------

TEST(MetricsBytesTest, AbsorbTakesMaxOfPeaksAndSumsCharges) {
  QueryMetrics a;
  a.peak_bytes = 100;
  a.charged_bytes = 10;
  QueryMetrics b;
  b.peak_bytes = 70;
  b.charged_bytes = 25;
  a.Absorb(b);
  // Sequential plan pieces reuse memory: the combined residency peak is
  // the larger piece, while cumulative charges add.
  EXPECT_EQ(a.peak_bytes, 100u);
  EXPECT_EQ(a.charged_bytes, 35u);

  QueryMetrics c;
  c.peak_bytes = 400;
  a.Absorb(c);
  EXPECT_EQ(a.peak_bytes, 400u);
  EXPECT_EQ(a.charged_bytes, 35u);
}

// ---------------------------------------------------------------------------
// Feedback store: q-error, round-trip, replacement semantics.
// ---------------------------------------------------------------------------

TEST(QErrorTest, SymmetricClampedAndToleratesMissingEstimates) {
  EXPECT_DOUBLE_EQ(QError(10, 1000), 100.0);
  EXPECT_DOUBLE_EQ(QError(1000, 10), 100.0);
  EXPECT_DOUBLE_EQ(QError(500, 500), 1.0);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);   // clamps to 1 tuple per side
  EXPECT_DOUBLE_EQ(QError(-1, 50), 1.0);  // missing estimate: nothing to audit
}

FeedbackStore HandBuiltStore() {
  FeedbackStore store;
  QueryFeedback* q = store.FindOrAdd("Q(x) :- R(x, y), S(y, x).", 16);
  StrategyFeedback rs;
  rs.strategy = "RS_HJ";
  rs.tuples_shuffled = 12345;
  rs.output_tuples = 678;
  rs.peak_bytes = 9999;
  rs.ops.push_back({FeedbackOp::Kind::kStage, "join_1", 100.0, 450.0, 0.0});
  rs.ops.push_back(
      {FeedbackOp::Kind::kExchange, "R ->h(y)", -1.0, 500.0, 2.5});
  q->strategies.push_back(std::move(rs));
  StrategyFeedback hc;
  hc.strategy = "HC_TJ";
  hc.failed = true;
  q->strategies.push_back(std::move(hc));
  return store;
}

TEST(FeedbackStoreTest, JsonRoundTripPreservesEveryField) {
  const FeedbackStore store = HandBuiltStore();
  auto parsed = FeedbackStore::Parse(store.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->queries.size(), 1u);
  const QueryFeedback* q = parsed->Find("Q(x) :- R(x, y), S(y, x).", 16);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->workers, 16);
  ASSERT_EQ(q->strategies.size(), 2u);
  const StrategyFeedback* rs = q->FindStrategy("RS_HJ");
  ASSERT_NE(rs, nullptr);
  EXPECT_FALSE(rs->failed);
  EXPECT_DOUBLE_EQ(rs->tuples_shuffled, 12345);
  EXPECT_DOUBLE_EQ(rs->output_tuples, 678);
  EXPECT_DOUBLE_EQ(rs->peak_bytes, 9999);
  ASSERT_EQ(rs->ops.size(), 2u);
  EXPECT_EQ(rs->ops[0].kind, FeedbackOp::Kind::kStage);
  EXPECT_EQ(rs->ops[0].label, "join_1");
  EXPECT_DOUBLE_EQ(rs->ops[0].estimated, 100.0);
  EXPECT_DOUBLE_EQ(rs->ops[0].actual, 450.0);
  EXPECT_EQ(rs->ops[1].kind, FeedbackOp::Kind::kExchange);
  EXPECT_DOUBLE_EQ(rs->ops[1].skew, 2.5);
  EXPECT_DOUBLE_EQ(rs->MaxExchangeSkew(), 2.5);
  const StrategyFeedback* hc = q->FindStrategy("HC_TJ");
  ASSERT_NE(hc, nullptr);
  EXPECT_TRUE(hc->failed);
  // FindFamily skips failed runs.
  EXPECT_EQ(q->FindFamily("HC_"), nullptr);
  EXPECT_EQ(q->FindFamily("RS_"), rs);
}

TEST(FeedbackStoreTest, RejectsWrongVersionAndGarbage) {
  EXPECT_FALSE(FeedbackStore::Parse("{\"version\":999,\"queries\":[]}").ok());
  EXPECT_FALSE(FeedbackStore::Parse("not json at all").ok());
}

TEST(FeedbackStoreTest, FindOrAddKeysOnQueryAndWorkers) {
  FeedbackStore store;
  QueryFeedback* a = store.FindOrAdd("q", 8);
  a->strategies.push_back({});
  EXPECT_EQ(store.FindOrAdd("q", 8), a);  // same pair: replaced in place
  EXPECT_EQ(store.queries.size(), 1u);
  store.FindOrAdd("q", 16);  // same query, different cluster size
  EXPECT_EQ(store.queries.size(), 2u);
  EXPECT_EQ(store.Find("q", 4), nullptr);
}

// ---------------------------------------------------------------------------
// Advisor feedback replay.
// ---------------------------------------------------------------------------

NormalizedQuery TwoAtomQuery(Rng* rng) {
  Catalog catalog;
  catalog.Put(test::RandomBinaryRelation("R", {"x", "y"}, 600, 50, rng));
  catalog.Put(test::RandomBinaryRelation("S", {"y", "z"}, 600, 50, rng));
  auto parsed = ParseDatalog("Q(x, z) :- R(x, y), S(y, z).", nullptr);
  EXPECT_TRUE(parsed.ok());
  auto nq = Normalize(*parsed, catalog);
  EXPECT_TRUE(nq.ok()) << nq.status().ToString();
  return *nq;
}

TEST(AdvisorFeedbackTest, MeasuredShuffleVolumeRepicksStrategy) {
  Rng rng(21);
  const NormalizedQuery q = TwoAtomQuery(&rng);
  const StrategyAdvice blind = AdviseStrategy(q, 16);
  ASSERT_EQ(blind.shuffle, ShuffleKind::kRegular)
      << "two-atom join must look RS-cheapest blind";
  EXPECT_FALSE(blind.used_feedback);

  // Feedback claims the regular shuffle actually moved 100x the estimate
  // (and measured heavy consumer skew): the advisor must re-pick.
  FeedbackStore store;
  QueryFeedback* entry = store.FindOrAdd("ignored-key", 16);
  StrategyFeedback rs;
  rs.strategy = "RS_HJ";
  rs.tuples_shuffled = blind.est_rs_tuples * 100;
  rs.ops.push_back(
      {FeedbackOp::Kind::kExchange, "R ->h(y)", -1.0, 1200.0, 10.0});
  entry->strategies.push_back(std::move(rs));

  const StrategyAdvice replay = AdviseStrategy(q, 16, entry);
  EXPECT_TRUE(replay.used_feedback);
  EXPECT_NE(replay.shuffle, ShuffleKind::kRegular);
  EXPECT_DOUBLE_EQ(replay.est_rs_tuples, blind.est_rs_tuples * 100);
  EXPECT_DOUBLE_EQ(replay.est_rs_skew, 10.0);
  EXPECT_GE(replay.blind_max_qerror, 100.0);
  EXPECT_DOUBLE_EQ(replay.feedback_max_qerror, 1.0);
  EXPECT_NE(replay.rationale.find("[measured;"), std::string::npos)
      << replay.rationale;
}

TEST(AdvisorFeedbackTest, FailedRegularShuffleFamilyIsNeverRepicked) {
  Rng rng(21);
  const NormalizedQuery q = TwoAtomQuery(&rng);
  ASSERT_EQ(AdviseStrategy(q, 16).shuffle, ShuffleKind::kRegular);

  FeedbackStore store;
  QueryFeedback* entry = store.FindOrAdd("ignored-key", 16);
  StrategyFeedback rs_hj;
  rs_hj.strategy = "RS_HJ";
  rs_hj.failed = true;
  entry->strategies.push_back(std::move(rs_hj));
  StrategyFeedback rs_tj;
  rs_tj.strategy = "RS_TJ";
  rs_tj.failed = true;
  entry->strategies.push_back(std::move(rs_tj));

  const StrategyAdvice replay = AdviseStrategy(q, 16, entry);
  EXPECT_NE(replay.shuffle, ShuffleKind::kRegular);
  EXPECT_NE(replay.rationale.find("FAILed before"), std::string::npos)
      << replay.rationale;
}

TEST(AdvisorFeedbackTest, CollectFeedbackRecordsStagesAndExchanges) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);  // triangle: three atoms, two RS rounds
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;
  MeteredRun run = RunMetered(1, wl->normalized, ShuffleKind::kRegular,
                              JoinKind::kHashJoin, opts);

  const StrategyFeedback sf =
      CollectStrategyFeedback(wl->normalized, "RS_HJ", run.result);
  EXPECT_EQ(sf.strategy, "RS_HJ");
  EXPECT_FALSE(sf.failed);
  EXPECT_DOUBLE_EQ(sf.tuples_shuffled,
                   static_cast<double>(run.result.metrics.TuplesShuffled()));
  EXPECT_DOUBLE_EQ(sf.peak_bytes,
                   static_cast<double>(run.result.metrics.peak_bytes));
  EXPECT_GT(sf.peak_bytes, 0.0);

  // join_1 is the only non-final round of a 3-atom left-deep plan: it
  // carries the planner estimate; the final join_2 records measurement
  // only.
  const FeedbackOp* j1 = sf.FindOp("join_1");
  ASSERT_NE(j1, nullptr);
  EXPECT_EQ(j1->kind, FeedbackOp::Kind::kStage);
  EXPECT_GE(j1->estimated, 0.0);
  const FeedbackOp* j2 = sf.FindOp("join_2");
  ASSERT_NE(j2, nullptr);
  EXPECT_LT(j2->estimated, 0.0);

  size_t exchanges = 0;
  for (const FeedbackOp& op : sf.ops) {
    if (op.kind == FeedbackOp::Kind::kExchange) ++exchanges;
  }
  EXPECT_EQ(exchanges, run.result.metrics.shuffles.size());

  // The audit renders without estimates crashing on measurement-only ops.
  QueryFeedback qf;
  qf.query_key = wl->query.ToString();
  qf.workers = opts.num_workers;
  qf.strategies.push_back(sf);
  const std::string audit = QErrorAuditText(qf);
  EXPECT_NE(audit.find("q-error audit"), std::string::npos);
  EXPECT_NE(audit.find("join_1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE memory section.
// ---------------------------------------------------------------------------

TEST(ExplainMemoryTest, GoldenMemorySectionForHandBuiltAccounting) {
  QueryMemory mem;
  mem.name = "RS_HJ";
  mem.peak_bytes = 5000;
  mem.live_bytes = 0;
  mem.budget_bytes = 4096;
  mem.max_overage_bytes = 904;
  mem.charged[static_cast<size_t>(MemCategory::kHashTable)] = 2000;
  mem.charged[static_cast<size_t>(MemCategory::kShuffleBuffer)] = 3000;
  StageMemory stage;
  stage.label = "join_1";
  stage.peak_bytes = 3200;
  stage.worker_peak_bytes = {1600, 1600};
  mem.stages.push_back(std::move(stage));

  const std::string golden =
      "memory: peak 5000 B, charged 5000 B\n"
      "  hash_table_bytes      2000 B\n"
      "  shuffle_buffer_bytes  3000 B\n"
      "  stage join_1          peak 3200 B across 2 worker(s)\n"
      "  budget 4096 B EXCEEDED by 904 B (soft limit)\n";
  EXPECT_EQ(MemorySectionText(mem), golden);
}

TEST(ExplainMemoryTest, ExplainAppendsMemorySectionWhenMeterGiven) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();
  StrategyOptions opts;

  runtime::SetThreads(1);
  ResourceMeter meter;
  ResourceMeter* prev = SetActiveResourceMeter(&meter);
  auto result = RunStrategy(wl->normalized, ShuffleKind::kRegular,
                            JoinKind::kHashJoin, opts);
  SetActiveResourceMeter(prev);
  runtime::SetThreads(0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ExplainOptions expl;
  expl.include_timings = false;
  expl.resources = &meter;
  const std::string with = ExplainAnalyzeText("RS_HJ", *result, expl);
  expl.resources = nullptr;
  const std::string without = ExplainAnalyzeText("RS_HJ", *result, expl);

  EXPECT_EQ(without.find("memory:"), std::string::npos);
  EXPECT_NE(with.find("memory: peak"), std::string::npos);
  EXPECT_NE(with.find("shuffle_buffer_bytes"), std::string::npos);
  // Unknown strategy: no section, no crash.
  expl.resources = &meter;
  const std::string other = ExplainAnalyzeText("HC_TJ", *result, expl);
  EXPECT_EQ(other.find("memory:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Disabled fast path: probing an absent meter must not allocate.
// ---------------------------------------------------------------------------

TEST(ResourceDisabledTest, NullMeterHooksDoNotAllocate) {
  SetActiveResourceMeter(nullptr);
  const size_t before = g_alloc_count;
  for (int i = 0; i < 1000; ++i) {
    MemCharge(MemCategory::kHashTable, 128);
    MemRelease(128);
    if (ResourceMeter* m = ActiveResourceMeter()) {
      (void)m;
      ADD_FAILURE() << "meter unexpectedly installed";
    }
  }
  EXPECT_EQ(g_alloc_count, before)
      << "disabled meter hooks must not allocate";
}

}  // namespace
}  // namespace ptp
