// Conformance: the parallel engine must be indistinguishable from the
// sequential one. For all eight paper workloads at W=16, every strategy run
// with --threads=1 and with a multi-thread pool must produce bit-identical
// gathered results, identical per-shuffle tuple movement, and an identical
// counter-registry snapshot (counters count work, not time, so they are
// thread-count-independent by design).

#include <utility>
#include <vector>

#include "data/workloads.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "plan/semijoin_plan.h"
#include "plan/strategies.h"
#include "runtime/parallel.h"
#include "storage/sort.h"

namespace ptp {
namespace {

WorkloadScale TinyScale() {
  WorkloadScale scale;
  scale.twitter.num_nodes = 400;
  scale.twitter.num_edges = 2500;
  scale.twitter.zipf_exponent = 0.7;
  scale.freebase_scale = 0.08;
  scale.seed = 99;
  return scale;
}

struct RunRecord {
  StrategyResult result;
  std::vector<std::pair<std::string, uint64_t>> counters;
};

RunRecord RunWith(int threads, const NormalizedQuery& q, ShuffleKind shuffle,
                  JoinKind join, const StrategyOptions& opts) {
  runtime::SetThreads(threads);
  CounterRegistry registry;
  CounterRegistry* prev = SetActiveCounterRegistry(&registry);
  auto result = RunStrategy(q, shuffle, join, opts);
  SetActiveCounterRegistry(prev);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunRecord record;
  record.result = std::move(result).value();
  record.counters = registry.CounterSnapshot();
  return record;
}

void ExpectEquivalent(const RunRecord& serial, const RunRecord& parallel,
                      const std::string& context) {
  // Bit-identical output: same tuples in the same order.
  ASSERT_EQ(serial.result.output.NumTuples(),
            parallel.result.output.NumTuples())
      << context;
  EXPECT_EQ(serial.result.output.data(), parallel.result.output.data())
      << context << ": gathered results differ";

  // Identical tuple movement, shuffle by shuffle.
  const QueryMetrics& sm = serial.result.metrics;
  const QueryMetrics& pm = parallel.result.metrics;
  ASSERT_EQ(sm.shuffles.size(), pm.shuffles.size()) << context;
  for (size_t i = 0; i < sm.shuffles.size(); ++i) {
    EXPECT_EQ(sm.shuffles[i].label, pm.shuffles[i].label) << context;
    EXPECT_EQ(sm.shuffles[i].tuples_sent, pm.shuffles[i].tuples_sent)
        << context << ": shuffle " << sm.shuffles[i].label;
    EXPECT_EQ(sm.shuffles[i].producer_skew, pm.shuffles[i].producer_skew)
        << context << ": shuffle " << sm.shuffles[i].label;
    EXPECT_EQ(sm.shuffles[i].consumer_skew, pm.shuffles[i].consumer_skew)
        << context << ": shuffle " << sm.shuffles[i].label;
  }

  // Identical data-dependent metrics (everything but timing).
  EXPECT_EQ(sm.failed, pm.failed) << context;
  EXPECT_EQ(sm.fail_reason, pm.fail_reason) << context;
  EXPECT_EQ(sm.output_tuples, pm.output_tuples) << context;
  EXPECT_EQ(sm.max_intermediate_tuples, pm.max_intermediate_tuples) << context;
  ASSERT_EQ(sm.stages.size(), pm.stages.size()) << context;
  for (size_t i = 0; i < sm.stages.size(); ++i) {
    EXPECT_EQ(sm.stages[i].label, pm.stages[i].label) << context;
    EXPECT_EQ(sm.stages[i].output_tuples, pm.stages[i].output_tuples)
        << context << ": stage " << sm.stages[i].label;
    EXPECT_EQ(sm.stages[i].failed, pm.stages[i].failed)
        << context << ": stage " << sm.stages[i].label;
  }

  // Identical counter snapshot (names and values).
  EXPECT_EQ(serial.counters, parallel.counters) << context;
}

class ParallelConformance : public ::testing::TestWithParam<int> {
  void TearDown() override { runtime::SetThreads(0); }
};

TEST_P(ParallelConformance, SequentialAndParallelEnginesAgree) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(GetParam());
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();

  StrategyOptions opts;
  opts.num_workers = 16;

  for (const auto& [shuffle, join] : AllStrategies()) {
    const std::string context =
        wl->id + std::string(" ") + StrategyName(shuffle, join);
    RunRecord serial = RunWith(1, wl->normalized, shuffle, join, opts);
    RunRecord parallel = RunWith(8, wl->normalized, shuffle, join, opts);
    ExpectEquivalent(serial, parallel, context);
  }
}

INSTANTIATE_TEST_SUITE_P(Q1toQ8, ParallelConformance, ::testing::Range(1, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

// Same sweep with the radix sort forced on (thresholds dropped to one row),
// so the tiny conformance workloads exercise the MSB-radix partition and —
// at 8 threads — its ParallelFor passes. Fragment sorts must still be
// bit-identical across thread counts.
class RadixSortConformance : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    saved_tuning_ = SetRadixSortTuningForTest({1, 1});
  }
  void TearDown() override {
    SetRadixSortTuningForTest(saved_tuning_);
    runtime::SetThreads(0);
  }

 private:
  RadixSortTuning saved_tuning_;
};

TEST_P(RadixSortConformance, SequentialAndParallelEnginesAgree) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(GetParam());
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();

  StrategyOptions opts;
  opts.num_workers = 16;

  for (const auto& [shuffle, join] : AllStrategies()) {
    const std::string context = wl->id + std::string(" ") +
                                StrategyName(shuffle, join) +
                                " (forced radix)";
    RunRecord serial = RunWith(1, wl->normalized, shuffle, join, opts);
    RunRecord parallel = RunWith(8, wl->normalized, shuffle, join, opts);
    ExpectEquivalent(serial, parallel, context);
  }
}

INSTANTIATE_TEST_SUITE_P(Q1toQ8, RadixSortConformance, ::testing::Range(1, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(ParallelConformance, SemijoinPlanAgrees) {
  WorkloadFactory factory(TinyScale());
  StrategyOptions opts;
  opts.num_workers = 16;
  for (int q = 1; q <= 8; ++q) {
    auto wl = factory.Make(q);
    ASSERT_TRUE(wl.ok());
    if (wl->cyclic) continue;
    runtime::SetThreads(1);
    auto serial = RunSemijoinPlan(wl->query, wl->normalized, opts, nullptr);
    runtime::SetThreads(8);
    auto parallel = RunSemijoinPlan(wl->query, wl->normalized, opts, nullptr);
    runtime::SetThreads(0);
    ASSERT_TRUE(serial.ok() && parallel.ok()) << wl->id;
    EXPECT_EQ(serial->output.data(), parallel->output.data())
        << wl->id << ": semijoin plan diverges across thread counts";
    EXPECT_EQ(serial->metrics.TuplesShuffled(),
              parallel->metrics.TuplesShuffled())
        << wl->id;
  }
}

}  // namespace
}  // namespace ptp
