// Unit tests for the deterministic runtime pool (src/runtime/): start/stop,
// first-error-wins aggregation, exception propagation, nested-region
// rejection, and the contract the engine relies on — identical outcomes at
// every thread count because every index runs and writes only its own state.

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace ptp {
namespace runtime {
namespace {

TEST(ThreadPoolTest, StartStopRepeatedly) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<int> out(64, 0);
    Status s = pool.ParallelFor(64, [&](int i) {
      out[static_cast<size_t>(i)] = i * i;
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
  }  // ~ThreadPool joins; leaving scope repeatedly must not hang or leak.
}

TEST(ThreadPoolTest, ClampsThreadCount) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool huge(kMaxThreads + 100);
  EXPECT_EQ(huge.num_threads(), kMaxThreads);
}

TEST(ThreadPoolTest, EmptyRangeIsOk) {
  ThreadPool pool(4);
  EXPECT_TRUE(pool.ParallelFor(0, [](int) { return Status::OK(); }).ok());
}

TEST(ThreadPoolTest, CurrentThreadIndexScoping) {
  EXPECT_EQ(CurrentThreadIndex(), -1);
  ThreadPool pool(3);
  std::vector<int> seen(16, -2);
  Status s = pool.ParallelFor(16, [&](int i) {
    seen[static_cast<size_t>(i)] = CurrentThreadIndex();
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  for (int idx : seen) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 3);
  }
  EXPECT_EQ(CurrentThreadIndex(), -1);
}

TEST(ThreadPoolTest, FirstErrorByIndexWinsAndEveryIndexRuns) {
  for (int threads : {1, 8}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    Status s = pool.ParallelFor(32, [&](int i) {
      ran.fetch_add(1);
      if (i == 7) return Status::Internal("error at 7");
      if (i == 21) return Status::InvalidArgument("error at 21");
      return Status::OK();
    });
    // No early exit: a failing index must not stop the others (the engine
    // counts on complete per-index state), and the lowest failing index
    // decides the returned status at every thread count.
    EXPECT_EQ(ran.load(), 32) << "threads=" << threads;
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInternal);
    EXPECT_EQ(s.message(), "error at 7");
  }
}

TEST(ThreadPoolTest, ExceptionPropagates) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        {
          (void)pool.ParallelFor(8, [&](int i) -> Status {
            if (i == 3) throw std::runtime_error("boom");
            return Status::OK();
          });
        },
        std::runtime_error)
        << "threads=" << threads;
    // The pool must survive an exceptional batch.
    EXPECT_TRUE(pool.ParallelFor(4, [](int) { return Status::OK(); }).ok());
  }
}

TEST(ThreadPoolTest, NestedParallelForRejected) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::vector<Status> inner(4);
    Status s = pool.ParallelFor(4, [&](int i) {
      inner[static_cast<size_t>(i)] =
          ParallelFor(2, [](int) { return Status::OK(); });
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (const Status& st : inner) {
      EXPECT_EQ(st.code(), StatusCode::kInternal) << "threads=" << threads;
    }
  }
}

TEST(ParallelApiTest, SetThreadsControlsGlobalPool) {
  SetThreads(3);
  EXPECT_EQ(Threads(), 3);
  EXPECT_EQ(GlobalPool().num_threads(), 3);
  SetThreads(1);
  EXPECT_EQ(Threads(), 1);
  SetThreads(0);  // back to auto for other tests
  EXPECT_GE(Threads(), 1);
}

TEST(ParallelApiTest, DeterministicAcrossThreadCounts) {
  // The engine's contract: a body that writes only index-i state produces
  // bit-identical results at --threads=1 and --threads=8.
  auto run = [](int threads) {
    SetThreads(threads);
    std::vector<uint64_t> out(257, 0);
    Status s = ParallelFor(257, [&](int i) {
      uint64_t h = static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull + 1;
      for (int k = 0; k < 100; ++k) h ^= h << 13, h ^= h >> 7, h ^= h << 17;
      out[static_cast<size_t>(i)] = h;
      return Status::OK();
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  };
  const std::vector<uint64_t> serial = run(1);
  const std::vector<uint64_t> parallel = run(8);
  SetThreads(0);
  EXPECT_EQ(serial, parallel);
}

TEST(TaskGroupTest, RunsAllTasksAndAggregatesFirstError) {
  SetThreads(4);
  TaskGroup group;
  std::vector<int> done(6, 0);
  for (int i = 0; i < 6; ++i) {
    group.Add([&done, i] {
      done[static_cast<size_t>(i)] = i + 1;
      return i == 2 ? Status::NotFound("task 2") : Status::OK();
    });
  }
  EXPECT_EQ(group.size(), 6u);
  Status s = group.Run();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(done[static_cast<size_t>(i)], i + 1);
  // A drained group runs zero tasks.
  EXPECT_EQ(group.size(), 0u);
  EXPECT_TRUE(group.Run().ok());
  SetThreads(0);
}

}  // namespace
}  // namespace runtime
}  // namespace ptp
