#include "plan/semijoin_plan.h"

#include "gtest/gtest.h"
#include "query/parser.h"
#include "test_util.h"

namespace ptp {
namespace {

struct QuerySetup {
  ConjunctiveQuery query;
  NormalizedQuery normalized;
  Relation expected;
};

QuerySetup MakeSetup(const char* text, uint64_t seed, size_t tuples, Value domain) {
  Rng rng(seed);
  auto parsed = ParseDatalog(text, nullptr);
  PTP_CHECK(parsed.ok()) << parsed.status().ToString();
  Catalog catalog;
  for (const Atom& atom : parsed->atoms()) {
    if (!catalog.Contains(atom.relation)) {
      catalog.Put(test::RandomBinaryRelation(atom.relation, atom.Variables(),
                                             tuples, domain, &rng));
    }
  }
  auto nq = Normalize(*parsed, catalog);
  PTP_CHECK(nq.ok());
  QuerySetup s{*parsed, std::move(nq).value(), Relation()};
  Relation full = test::BruteForceJoin(s.normalized);
  std::vector<int> cols;
  for (const std::string& v : s.normalized.head_vars) {
    cols.push_back(full.schema().IndexOf(v));
  }
  s.expected = full.PermuteColumns(cols, "expected");
  if (s.normalized.head_vars.size() < s.normalized.Variables().size()) {
    s.expected.SortAndDedup();
  }
  return s;
}

TEST(SemijoinPlanTest, PathQueryMatchesBruteForce) {
  QuerySetup s = MakeSetup("P(x,w) :- R(x,y), S(y,z), U(z,w).", 41, 100, 10);
  StrategyOptions opts;
  opts.num_workers = 6;
  SemijoinBreakdown breakdown;
  auto result = RunSemijoinPlan(s.query, s.normalized, opts, &breakdown);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->output.EqualsUnordered(s.expected));
  EXPECT_GT(breakdown.projected_tuples_shuffled, 0u);
  EXPECT_GT(breakdown.input_tuples_shuffled, 0u);
}

TEST(SemijoinPlanTest, StarQueryMatchesBruteForce) {
  QuerySetup s = MakeSetup("Q(a) :- HA(h,aw), HC(h,a), HY(h,y), N(aw,n).", 43, 80,
                      8);
  StrategyOptions opts;
  opts.num_workers = 4;
  auto result = RunSemijoinPlan(s.query, s.normalized, opts, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->output.EqualsUnordered(s.expected));
}

TEST(SemijoinPlanTest, RemovesDanglingTuples) {
  // R(x,y) joins S(y,z) where S only covers half of y's domain: the
  // reduction must shrink R.
  Relation r("R", Schema{"x", "y"});
  Relation s("S", Schema{"y", "z"});
  for (Value i = 0; i < 100; ++i) r.AddTuple({i, i % 10});
  for (Value y = 0; y < 5; ++y) s.AddTuple({y, y + 100});
  Catalog catalog;
  catalog.Put(r);
  catalog.Put(s);
  auto parsed = ParseDatalog("Q(x,z) :- R(x,y), S(y,z).", nullptr);
  ASSERT_TRUE(parsed.ok());
  auto nq = Normalize(*parsed, catalog);
  ASSERT_TRUE(nq.ok());
  StrategyOptions opts;
  opts.num_workers = 4;
  SemijoinBreakdown breakdown;
  auto result = RunSemijoinPlan(*parsed, *nq, opts, &breakdown);
  ASSERT_TRUE(result.ok());
  // R had 100 tuples; only those with y in [0,5) survive (50).
  bool found_r = false;
  for (const auto& [before, after] : breakdown.reduction_per_atom) {
    if (before == 100) {
      EXPECT_EQ(after, 50u);
      found_r = true;
    }
  }
  EXPECT_TRUE(found_r);
}

TEST(SemijoinPlanTest, CyclicQueryRejected) {
  QuerySetup s = MakeSetup("T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 45, 50, 8);
  StrategyOptions opts;
  opts.num_workers = 4;
  auto result = RunSemijoinPlan(s.query, s.normalized, opts, nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SemijoinPlanTest, MetricsIncludeSemijoinShuffles) {
  QuerySetup s = MakeSetup("P(x,w) :- R(x,y), S(y,z), U(z,w).", 47, 100, 10);
  StrategyOptions opts;
  opts.num_workers = 4;
  auto semi = RunSemijoinPlan(s.query, s.normalized, opts, nullptr);
  auto plain = RunStrategy(s.normalized, ShuffleKind::kRegular,
                           JoinKind::kHashJoin, opts);
  ASSERT_TRUE(semi.ok() && plain.ok());
  // The semijoin plan has a longer pipeline: strictly more shuffle steps.
  EXPECT_GT(semi->metrics.shuffles.size(), plain->metrics.shuffles.size());
}

}  // namespace
}  // namespace ptp
