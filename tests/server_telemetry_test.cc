// Fleet telemetry plane tests (server/telemetry.h, obs/metrics_export.h):
// the metrics registry must agree with the per-response ground truth, the
// Prometheus exposition must round-trip the strict line-format checker
// (and the checker must reject corrupted expositions), the structured
// query log must hold exactly one parseable JSONL record per resolved
// request — including shed and cancelled ones — the snapshot renderer is
// pinned by a golden, and the stitched request trace must carry a
// submit->queue->execute flow per request.

#include "server/telemetry.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "obs/metrics_export.h"
#include "obs/profile_report.h"
#include "obs/trace.h"
#include "server/server.h"
#include "storage/catalog.h"
#include "test_util.h"

namespace ptp {
namespace {

std::shared_ptr<Catalog> MakeCatalog(uint64_t seed, size_t tuples,
                                     Value domain) {
  auto catalog = std::make_shared<Catalog>();
  Rng rng(seed);
  for (const char* name : {"R", "S", "U"}) {
    catalog->Put(test::RandomBinaryRelation(name, {"a", "b"}, tuples, domain,
                                            &rng));
  }
  return catalog;
}

QueryRequest MakeRequest(Catalog* catalog, const std::string& text,
                         int workers = 4) {
  QueryRequest req;
  req.text = text;
  req.catalog = catalog;
  req.workers = workers;
  return req;
}

constexpr const char* kTriangle = "T(x,y,z) :- R(x,y), S(y,z), U(z,x).";
constexpr const char* kPath = "P(x,w) :- R(x,y), S(y,z), U(z,w).";

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// Outcome vocabulary.
// ---------------------------------------------------------------------------

TEST(Telemetry, OutcomeNames) {
  EXPECT_EQ(OutcomeName(StatusCode::kOk, false, false), "ok");
  EXPECT_EQ(OutcomeName(StatusCode::kInvalidArgument, false, false),
            "invalid");
  EXPECT_EQ(OutcomeName(StatusCode::kResourceExhausted, true, false), "shed");
  EXPECT_EQ(OutcomeName(StatusCode::kResourceExhausted, false, true),
            "rejected");
  EXPECT_EQ(OutcomeName(StatusCode::kResourceExhausted, false, false),
            "resource_exhausted");
  EXPECT_EQ(OutcomeName(StatusCode::kCancelled, false, false), "cancelled");
  EXPECT_EQ(OutcomeName(StatusCode::kDeadlineExceeded, false, false),
            "deadline_exceeded");
  EXPECT_EQ(OutcomeName(StatusCode::kUnavailable, false, false),
            "unavailable");
  EXPECT_EQ(OutcomeName(StatusCode::kInternal, false, false), "failed");
}

// ---------------------------------------------------------------------------
// Fleet metrics vs per-response ground truth.
// ---------------------------------------------------------------------------

TEST(Telemetry, MetricsMatchResponses) {
  auto catalog = MakeCatalog(7, 400, 40);
  ServerOptions so;
  so.executors = 3;
  QueryServer server(so);
  auto* session = server.OpenSession("t");

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(session->Submit(MakeRequest(
        catalog.get(), i % 2 == 0 ? kTriangle : kPath)));
  }
  server.Drain();

  uint64_t ok = 0, cache_hits = 0, small = 0, large = 0;
  for (const QueryHandle& h : handles) {
    const QueryResponse& r = h.Get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ++ok;
    if (r.cache_hit) ++cache_hits;
    if (r.cost_class == "small") {
      ++small;
    } else {
      ++large;
    }
  }

  const ServerTelemetry& t = server.telemetry();
  EXPECT_EQ(t.CounterValue("outcome.ok"), ok);
  EXPECT_EQ(t.CounterValue("cache_hits"), cache_hits);
  EXPECT_EQ(t.CounterValue("class.small"), small);
  EXPECT_EQ(t.CounterValue("class.large"), large);
  EXPECT_EQ(t.CounterValue("dispatched"), 12u);

  // Every resolved request lands in the end-to-end histogram of its class;
  // every dispatched one also in queue-wait and execution.
  for (const RequestPhase phase :
       {RequestPhase::kAdmission, RequestPhase::kQueueWait,
        RequestPhase::kExecution, RequestPhase::kEndToEnd}) {
    const uint64_t total = t.LatencySnapshot(phase, true).count() +
                           t.LatencySnapshot(phase, false).count();
    EXPECT_EQ(total, 12u) << RequestPhaseName(phase);
  }
  EXPECT_EQ(t.LatencySnapshot(RequestPhase::kEndToEnd, true).count(), small);
  EXPECT_EQ(t.LatencySnapshot(RequestPhase::kEndToEnd, false).count(), large);
}

// ---------------------------------------------------------------------------
// Prometheus exposition round-trip.
// ---------------------------------------------------------------------------

TEST(Telemetry, PrometheusRoundTrip) {
  auto catalog = MakeCatalog(11, 300, 30);
  ServerOptions so;
  so.executors = 2;
  QueryServer server(so);
  auto* session = server.OpenSession();
  for (int i = 0; i < 6; ++i) {
    session->Submit(MakeRequest(catalog.get(), kTriangle));
  }
  server.Drain();

  const std::string prom = server.RenderMetricsProm();
  EXPECT_TRUE(ValidatePrometheusText(prom).ok())
      << ValidatePrometheusText(prom).ToString();
  EXPECT_NE(prom.find("ptp_request_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("ptp_server_requests_total{outcome=\"ok\"} 6"),
            std::string::npos);
  EXPECT_NE(prom.find("ptp_plan_cache_lookups_total{result=\"hit\"} 5"),
            std::string::npos);

  // The JSON render parses with the in-repo parser and carries the same
  // counters.
  Result<JsonValue> json = ParseJson(server.RenderMetricsJson());
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  const JsonValue* fleet = json->Find("fleet");
  ASSERT_NE(fleet, nullptr);
  const JsonValue* counters = fleet->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->NumberOr("outcome.ok", -1), 6);

  // The checker is strict: corruptions a scraper would choke on fail.
  EXPECT_FALSE(ValidatePrometheusText("").ok());
  EXPECT_FALSE(ValidatePrometheusText(prom.substr(0, prom.size() - 1)).ok())
      << "missing trailing newline must fail";
  EXPECT_FALSE(ValidatePrometheusText(prom + "undeclared_metric 1\n").ok())
      << "sample without a TYPE declaration must fail";
  EXPECT_FALSE(ValidatePrometheusText(prom + "# free-form comment\n").ok())
      << "comments other than HELP/TYPE must fail";
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE h histogram\n"
                             "h_bucket{le=\"2\"} 3\n"
                             "h_bucket{le=\"1\"} 1\n"
                             "h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n")
          .ok())
      << "non-monotonic le must fail";
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE h histogram\n"
                             "h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n")
          .ok())
      << "_count disagreeing with the +Inf bucket must fail";
  EXPECT_TRUE(
      ValidatePrometheusText("# TYPE h histogram\n"
                             "h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n")
          .ok());
}

// ---------------------------------------------------------------------------
// Structured query log.
// ---------------------------------------------------------------------------

TEST(Telemetry, QueryLogOneRecordPerRequest) {
  auto catalog = MakeCatalog(13, 300, 30);
  const std::string path = TempPath("telemetry_qlog_test.jsonl");
  uint64_t submitted = 0;
  {
    ServerOptions so;
    so.executors = 1;
    so.start_paused = true;  // stage shed + cancel deterministically
    so.max_queue_depth = 3;
    so.query_log_path = path;
    so.slow_query_seconds = 1e-9;  // everything that runs is "slow"
    QueryServer server(so);
    auto* session = server.OpenSession("c");
    std::vector<QueryHandle> handles;
    for (int i = 0; i < 5; ++i) {  // 3 queue, 2 shed at the cap
      handles.push_back(session->Submit(MakeRequest(catalog.get(),
                                                    kTriangle)));
      ++submitted;
    }
    ASSERT_TRUE(session->Cancel("c.q3"));  // cancelled while queued
    server.Start();
    server.Drain();
    uint64_t ok = 0, shed = 0, cancelled = 0;
    for (const QueryHandle& h : handles) {
      const QueryResponse& r = h.Get();
      if (r.status.ok()) ++ok;
      if (r.status.code() == StatusCode::kResourceExhausted) ++shed;
      if (r.status.code() == StatusCode::kCancelled) ++cancelled;
    }
    EXPECT_EQ(ok, 2u);
    EXPECT_EQ(shed, 2u);
    EXPECT_EQ(cancelled, 1u);
    ASSERT_NE(server.query_log(), nullptr);
    EXPECT_EQ(server.query_log()->lines_written(), submitted);
  }

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), submitted);
  std::map<std::string, int> outcomes;
  std::set<std::string> ids;
  for (const std::string& line : lines) {
    Result<JsonValue> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << ": " << line;
    EXPECT_EQ(parsed->NumberOr("v", -1), 1);
    const JsonValue* kind = parsed->Find("kind");
    ASSERT_NE(kind, nullptr);
    EXPECT_EQ(kind->string, "request");
    const JsonValue* id = parsed->Find("id");
    ASSERT_NE(id, nullptr);
    EXPECT_TRUE(ids.insert(id->string).second) << "duplicate " << id->string;
    const JsonValue* outcome = parsed->Find("outcome");
    ASSERT_NE(outcome, nullptr);
    ++outcomes[outcome->string];
    const JsonValue* hash = parsed->Find("query_hash");
    ASSERT_NE(hash, nullptr);
    EXPECT_EQ(hash->string.size(), 16u);
    if (outcome->string == "ok") {
      const JsonValue* slow = parsed->Find("slow");
      ASSERT_NE(slow, nullptr);
      EXPECT_TRUE(slow->boolean);
      EXPECT_GT(parsed->NumberOr("exec_ms", -1), 0);
      EXPECT_GT(parsed->NumberOr("output_tuples", -1), 0);
    }
  }
  EXPECT_EQ(outcomes["ok"], 2);
  EXPECT_EQ(outcomes["shed"], 2);
  EXPECT_EQ(outcomes["cancelled"], 1);
  std::remove(path.c_str());
}

TEST(Telemetry, QueryHashIsStable) {
  // Deterministic 16-hex digest: equal texts agree, different texts don't.
  EXPECT_EQ(HashQueryText("T(x,y) :- R(x,y)."),
            HashQueryText("T(x,y) :- R(x,y)."));
  EXPECT_NE(HashQueryText("T(x,y) :- R(x,y)."),
            HashQueryText("T(x,y) :- S(x,y)."));
  EXPECT_EQ(HashQueryText("").size(), 16u);
}

// ---------------------------------------------------------------------------
// Snapshot views.
// ---------------------------------------------------------------------------

TEST(Telemetry, RenderSnapshotGolden) {
  ServerSnapshot snap;
  snap.pool.executors = 2;
  snap.pool.in_flight = 1;
  snap.pool.reserved_bytes = 1024;
  snap.pool.memory_pool_bytes = 4096;
  snap.pool.small_queued = 1;
  snap.pool.large_queued = 1;
  snap.pool.submitted = 4;
  snap.pool.completed = 1;
  snap.sessions.push_back({"alpha", 3});
  snap.sessions.push_back({"beta", 1});
  snap.queries.push_back(
      {"alpha.q2", "running", "large", "", 2048, 1, 0, 0.0});
  snap.queries.push_back(
      {"alpha.q3", "queued", "small", "RS_HJ", 512, 0, 0, 0.25});
  snap.queries.push_back(
      {"beta.q1", "suspended", "large", "RS_HJ", 1536, 2, 1, 0.5});
  const std::string golden =
      "ptp.pool\n"
      "  executors  2\n"
      "  in_flight  1\n"
      "  reserved   1024 B of 4096 B\n"
      "  queued     small=1 large=1\n"
      "  submitted  4\n"
      "  completed  1\n"
      "ptp.sessions\n"
      "  alpha        submitted=3\n"
      "  beta         submitted=1\n"
      "ptp.queries\n"
      "  alpha.q2     running   large est=2048 B seq=1 suspends=0\n"
      "  alpha.q3     queued    small est=512 B seq=0 suspends=0"
      " strategy=RS_HJ\n"
      "  beta.q1      suspended large est=1536 B seq=2 suspends=1"
      " strategy=RS_HJ\n";
  EXPECT_EQ(RenderSnapshotText(snap, /*include_timings=*/false), golden);
  // include_timings appends the volatile waited= column.
  EXPECT_NE(RenderSnapshotText(snap, /*include_timings=*/true)
                .find("waited=0.250s"),
            std::string::npos);
}

TEST(Telemetry, LiveSnapshotSeesQueuedQueries) {
  auto catalog = MakeCatalog(17, 200, 20);
  ServerOptions so;
  so.executors = 1;
  so.start_paused = true;
  QueryServer server(so);
  auto* session = server.OpenSession("live");
  session->Submit(MakeRequest(catalog.get(), kTriangle));
  session->Submit(MakeRequest(catalog.get(), kPath));

  const ServerSnapshot snap = server.Snapshot();
  EXPECT_EQ(snap.pool.submitted, 2u);
  EXPECT_EQ(snap.pool.completed, 0u);
  EXPECT_EQ(snap.pool.in_flight, 0);
  EXPECT_EQ(snap.pool.small_queued + snap.pool.large_queued, 2u);
  ASSERT_EQ(snap.sessions.size(), 1u);
  EXPECT_EQ(snap.sessions[0].id, "live");
  EXPECT_EQ(snap.sessions[0].submitted, 2u);
  ASSERT_EQ(snap.queries.size(), 2u);
  for (const ServerSnapshot::QueryRow& q : snap.queries) {
    EXPECT_EQ(q.state, "queued");
    EXPECT_TRUE(q.cost_class == "small" || q.cost_class == "large");
    EXPECT_EQ(q.dispatch_seq, 0u);
  }
  server.Start();
  server.Drain();
  const ServerSnapshot done = server.Snapshot();
  EXPECT_EQ(done.pool.completed, 2u);
  EXPECT_TRUE(done.queries.empty());
}

// ---------------------------------------------------------------------------
// Request trace stitching.
// ---------------------------------------------------------------------------

TEST(Telemetry, TraceStitchesRequestFlow) {
  auto catalog = MakeCatalog(19, 300, 30);
  TraceSession trace;
  std::vector<std::string> ids;
  {
    ServerOptions so;
    so.executors = 2;
    so.trace = &trace;
    QueryServer server(so);
    auto* session = server.OpenSession("tr");
    std::vector<QueryHandle> handles;
    for (int i = 0; i < 3; ++i) {
      handles.push_back(session->Submit(MakeRequest(catalog.get(),
                                                    kTriangle)));
    }
    server.Drain();
    for (const QueryHandle& h : handles) {
      ASSERT_TRUE(h.Get().status.ok());
      ids.push_back(h.Get().id);
    }
  }

  std::ostringstream os;
  trace.WriteJson(os);
  Result<JsonValue> parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> submit_names, queued_names, exec_names;
  std::map<std::string, std::set<std::string>> flow_phases;  // id -> phases
  for (const JsonValue& e : events->array) {
    const JsonValue* name = e.Find("name");
    const JsonValue* ph = e.Find("ph");
    if (name == nullptr || ph == nullptr) continue;
    if (name->string.rfind("submit ", 0) == 0) {
      submit_names.insert(name->string.substr(7));
    }
    if (name->string.rfind("queued ", 0) == 0) {
      queued_names.insert(name->string.substr(7));
    }
    if (name->string.rfind("exec ", 0) == 0 && ph->string == "B") {
      exec_names.insert(name->string.substr(5));
    }
    const JsonValue* cat = e.Find("cat");
    if (cat != nullptr && cat->string == "flow") {
      const JsonValue* flow = e.Find("id");
      ASSERT_NE(flow, nullptr);
      flow_phases[flow->string].insert(ph->string);
    }
  }
  for (const std::string& id : ids) {
    EXPECT_TRUE(submit_names.count(id)) << "no submit span for " << id;
    EXPECT_TRUE(queued_names.count(id)) << "no queued span for " << id;
    EXPECT_TRUE(exec_names.count(id)) << "no exec span for " << id;
  }
  // One flow per request, each opened (s), stepped (t), and closed (f).
  EXPECT_EQ(flow_phases.size(), ids.size());
  for (const auto& [flow, phases] : flow_phases) {
    EXPECT_TRUE(phases.count("s")) << "flow " << flow << " never started";
    EXPECT_TRUE(phases.count("t")) << "flow " << flow << " never stepped";
    EXPECT_TRUE(phases.count("f")) << "flow " << flow << " never finished";
  }
}

}  // namespace
}  // namespace ptp
