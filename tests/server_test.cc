// Serving-layer tests: plan-cache hit path (no re-parse/re-optimize),
// per-query sink isolation under concurrent executors (no cross-charged
// counters or memory), admission control (permanent rejection, queue-then-
// run when the pool frees, graceful hard-budget kResourceExhausted with
// retry-after), deterministic two-level fair scheduling, and session id
// assignment.

#include "server/server.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/resource.h"
#include "plan/strategies.h"
#include "query/normalize_text.h"
#include "query/parser.h"
#include "runtime/parallel.h"
#include "server/plan_cache.h"
#include "storage/catalog.h"
#include "test_util.h"

namespace ptp {
namespace {

// A catalog of random binary relations sized by `tuples`/`domain`, with
// every relation a test query mentions.
std::shared_ptr<Catalog> MakeCatalog(uint64_t seed, size_t tuples,
                                     Value domain) {
  auto catalog = std::make_shared<Catalog>();
  Rng rng(seed);
  for (const char* name : {"R", "S", "U"}) {
    catalog->Put(test::RandomBinaryRelation(name, {"a", "b"}, tuples, domain,
                                            &rng));
  }
  return catalog;
}

QueryRequest MakeRequest(Catalog* catalog, const std::string& text,
                         int workers = 4) {
  QueryRequest req;
  req.text = text;
  req.catalog = catalog;
  req.workers = workers;
  return req;
}

constexpr const char* kTriangle = "T(x,y,z) :- R(x,y), S(y,z), U(z,x).";
constexpr const char* kPath = "P(x,w) :- R(x,y), S(y,z), U(z,w).";

// ---------------------------------------------------------------------------
// Plan cache.
// ---------------------------------------------------------------------------

TEST(ServerTest, PlanCacheHitSkipsParseAndOptimize) {
  auto catalog = MakeCatalog(7, 80, 12);
  ServerOptions so;
  so.executors = 1;
  QueryServer server(so);
  auto* session = server.OpenSession();

  // Three spellings of the same query: different whitespace, AND vs comma,
  // different atom order. One parse, two hits.
  std::vector<QueryHandle> handles;
  handles.push_back(session->Submit(MakeRequest(catalog.get(), kTriangle)));
  handles.push_back(session->Submit(MakeRequest(
      catalog.get(), "T(x,y,z):-S(y,z) AND U(z,x) AND R(x,y)")));
  handles.push_back(session->Submit(MakeRequest(
      catalog.get(), "  T( x , y , z )  :-  R(x,y) ,\tS(y,z), U(z,x) .")));
  server.Drain();

  const Relation& first = handles[0].Get().output;
  for (const QueryHandle& h : handles) {
    const QueryResponse& r = h.Get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.output.EqualsUnordered(first));
  }
  EXPECT_FALSE(handles[0].Get().cache_hit);
  EXPECT_TRUE(handles[1].Get().cache_hit);
  EXPECT_TRUE(handles[2].Get().cache_hit);

  const PlanCache::Stats stats = server.plan_cache().stats();
  EXPECT_EQ(stats.parses, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(server.plan_cache().size(), 1u);
}

TEST(ServerTest, ParseErrorRejectedAtSubmit) {
  auto catalog = MakeCatalog(7, 20, 8);
  ServerOptions so;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle h =
      session->Submit(MakeRequest(catalog.get(), "not a query at all"));
  const QueryResponse& r = h.Get();
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

// ---------------------------------------------------------------------------
// Isolation: concurrently-served queries must not cross-charge sinks.
// ---------------------------------------------------------------------------

// Solo baseline of (query text, strategy): fresh registry + meter, direct
// RunStrategy — exactly what the server's executor does, minus the server.
struct SoloRun {
  QueryMetrics metrics;
  std::vector<std::pair<std::string, uint64_t>> counters;
  Relation output;
};

SoloRun RunSolo(Catalog* catalog, const std::string& text,
                const std::string& strategy, int workers) {
  auto parsed = ParseDatalog(text, &catalog->dictionary());
  PTP_CHECK(parsed.ok());
  auto nq = Normalize(*parsed, *catalog);
  PTP_CHECK(nq.ok());
  ShuffleKind shuffle = ShuffleKind::kRegular;
  JoinKind join = JoinKind::kHashJoin;
  for (const auto& [s, j] : AllStrategies()) {
    if (strategy == StrategyName(s, j)) {
      shuffle = s;
      join = j;
    }
  }
  StrategyOptions opts;
  opts.num_workers = workers;
  CounterRegistry counters;
  ResourceMeter meter(0, /*hard=*/true);
  CounterRegistry* prev_reg = SetActiveCounterRegistry(&counters);
  ResourceMeter* prev_meter = SetActiveResourceMeter(&meter);
  auto result = RunStrategy(*nq, shuffle, join, opts);
  SetActiveResourceMeter(prev_meter);
  SetActiveCounterRegistry(prev_reg);
  PTP_CHECK(result.ok()) << result.status().ToString();
  SoloRun solo;
  solo.metrics = result->metrics;
  solo.counters = counters.CounterSnapshot();
  solo.output = std::move(result->output);
  return solo;
}

TEST(ServerTest, ConcurrentQueriesBitIdenticalToSoloRuns) {
  auto twitter = MakeCatalog(11, 150, 14);
  auto freebase = MakeCatalog(23, 90, 10);

  ServerOptions so;
  so.executors = 3;
  QueryServer server(so);
  auto* s1 = server.OpenSession();
  auto* s2 = server.OpenSession();

  struct Submitted {
    Catalog* catalog;
    std::string text;
    int workers;
    QueryHandle handle;
  };
  std::vector<Submitted> all;
  // Interleave two sessions over two catalogs and two queries, repeatedly,
  // so executions of different queries overlap in every combination.
  for (int round = 0; round < 6; ++round) {
    all.push_back({twitter.get(), kTriangle, 4,
                   s1->Submit(MakeRequest(twitter.get(), kTriangle, 4))});
    all.push_back({freebase.get(), kPath, 3,
                   s2->Submit(MakeRequest(freebase.get(), kPath, 3))});
  }
  server.Drain();

  for (const Submitted& sub : all) {
    const QueryResponse& r = sub.handle.Get();
    ASSERT_TRUE(r.status.ok()) << r.id << ": " << r.status.ToString();
    // Baseline with the strategy the server actually ran (feedback may
    // upgrade it between rounds); every deterministic figure must match a
    // solo run bit-for-bit.
    SoloRun solo = RunSolo(sub.catalog, sub.text, r.strategy, sub.workers);
    EXPECT_TRUE(r.output.EqualsUnordered(solo.output)) << r.id;
    EXPECT_EQ(r.metrics.output_tuples, solo.metrics.output_tuples) << r.id;
    EXPECT_EQ(r.metrics.TuplesShuffled(), solo.metrics.TuplesShuffled())
        << r.id;
    EXPECT_EQ(r.metrics.max_intermediate_tuples,
              solo.metrics.max_intermediate_tuples)
        << r.id;
    EXPECT_EQ(r.metrics.peak_bytes, solo.metrics.peak_bytes) << r.id;
    EXPECT_EQ(r.metrics.charged_bytes, solo.metrics.charged_bytes) << r.id;
    EXPECT_EQ(r.counters, solo.counters) << r.id << " (" << r.strategy
                                         << "): counter cross-charge";
  }
  EXPECT_EQ(server.stats().completed, all.size());
  EXPECT_EQ(server.stats().failed, 0u);
}

// Regression for the underlying mechanism: active sinks are per thread and
// propagate into pool workers per batch, so two plain threads running
// parallel regions back-to-back never publish into each other's registry.
TEST(ServerTest, ActiveSinksArePerThread) {
  constexpr int kIters = 50;
  auto body = [](CounterRegistry* reg, ResourceMeter* meter,
                 uint64_t stamp) {
    CounterRegistry* prev_reg = SetActiveCounterRegistry(reg);
    ResourceMeter* prev_meter = SetActiveResourceMeter(meter);
    meter->BeginQuery("q");
    for (int i = 0; i < kIters; ++i) {
      Status st = runtime::ParallelFor(4, [&](int /*worker*/) {
        if (CounterRegistry* r = ActiveCounterRegistry()) {
          r->Add("iters", stamp);
        }
        MemCharge(MemCategory::kIntermediate, stamp);
        MemRelease(stamp);
        return Status::OK();
      });
      PTP_CHECK(st.ok());
    }
    SetActiveResourceMeter(prev_meter);
    SetActiveCounterRegistry(prev_reg);
  };
  CounterRegistry reg_a, reg_b;
  ResourceMeter meter_a, meter_b;
  std::thread ta([&] { body(&reg_a, &meter_a, 1); });
  std::thread tb([&] { body(&reg_b, &meter_b, 1000); });
  ta.join();
  tb.join();
  EXPECT_EQ(reg_a.Value("iters"), static_cast<uint64_t>(kIters) * 4 * 1);
  EXPECT_EQ(reg_b.Value("iters"), static_cast<uint64_t>(kIters) * 4 * 1000);
  ASSERT_EQ(meter_a.Snapshot().size(), 1u);
  ASSERT_EQ(meter_b.Snapshot().size(), 1u);
  EXPECT_EQ(meter_a.Snapshot()[0].TotalCharged(),
            static_cast<uint64_t>(kIters) * 4 * 1);
  EXPECT_EQ(meter_b.Snapshot()[0].TotalCharged(),
            static_cast<uint64_t>(kIters) * 4 * 1000);
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

// The peak estimate the admission controller will use for (text, workers).
uint64_t EstimateFor(Catalog* catalog, const std::string& text,
                     int workers) {
  PlanCache scratch;
  auto e = scratch.Prepare(text, workers, catalog, nullptr);
  PTP_CHECK(e.ok()) << e.status().ToString();
  return e->est_peak_bytes;
}

TEST(ServerTest, QueryThatCanNeverFitIsRejectedAtSubmit) {
  auto catalog = MakeCatalog(3, 200, 16);
  const uint64_t est = EstimateFor(catalog.get(), kTriangle, 4);
  ServerOptions so;
  so.memory_pool_bytes = est / 2;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle h = session->Submit(MakeRequest(catalog.get(), kTriangle, 4));
  const QueryResponse& r = h.Get();
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.retry_after_seconds, 0.0);  // permanent, not transient
  EXPECT_EQ(r.dispatch_seq, 0u);          // never dispatched
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST(ServerTest, OversizedQueryQueuesUntilPoolFrees) {
  auto catalog = MakeCatalog(3, 200, 16);
  const uint64_t est = EstimateFor(catalog.get(), kTriangle, 4);
  ServerOptions so;
  so.executors = 2;
  // Pool fits one triangle at a time, never two: the second submission
  // must wait for the first to release its reservation, not run beside it
  // and not be rejected.
  so.memory_pool_bytes = est + est / 2;
  so.start_paused = true;
  QueryServer server(so);
  auto* session = server.OpenSession();
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(session->Submit(MakeRequest(catalog.get(), kTriangle,
                                                  4)));
  }
  server.Start();
  server.Drain();
  for (const QueryHandle& h : handles) {
    EXPECT_TRUE(h.Get().status.ok()) << h.Get().status.ToString();
  }
  EXPECT_EQ(server.stats().completed, 4u);
  EXPECT_EQ(server.stats().rejected, 0u);
  // Dispatches happened (serialized by the pool), in FIFO order.
  std::vector<uint64_t> seqs;
  for (const QueryHandle& h : handles) seqs.push_back(h.Get().dispatch_seq);
  EXPECT_EQ(seqs, (std::vector<uint64_t>{1, 2, 3, 4}));
}

TEST(ServerTest, HardBudgetBreachFailsWithResourceExhausted) {
  auto catalog = MakeCatalog(5, 300, 12);
  ServerOptions so;
  so.executors = 1;
  so.query_budget_bytes = 1024;  // any shuffle materialization breaches
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle h = session->Submit(MakeRequest(catalog.get(), kTriangle, 4));
  const QueryResponse& r = h.Get();
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(r.retry_after_seconds, 0.0);  // transient: the pool drains
  EXPECT_TRUE(r.metrics.failed);
  EXPECT_EQ(r.metrics.fail_code, StatusCode::kResourceExhausted);
  EXPECT_NE(r.metrics.fail_reason.find("hard budget"), std::string::npos)
      << r.metrics.fail_reason;
  // The run's account is booked consistently: the breach counter fired
  // once, and the metered peak indeed exceeds the budget.
  uint64_t breaches = 0;
  for (const auto& [name, value] : r.counters) {
    if (name == "mem.hard_budget_breaches") breaches = value;
  }
  EXPECT_EQ(breaches, 1u);
  EXPECT_GT(r.metrics.peak_bytes, so.query_budget_bytes);
  EXPECT_EQ(server.stats().failed, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
}

// ---------------------------------------------------------------------------
// Fair scheduling.
// ---------------------------------------------------------------------------

TEST(ServerTest, TwoLevelSchedulingIsFairAndDeterministic) {
  auto small_cat = MakeCatalog(13, 40, 8);
  auto large_cat = MakeCatalog(17, 1500, 40);
  const uint64_t small_est = EstimateFor(small_cat.get(), kTriangle, 2);
  const uint64_t large_est = EstimateFor(large_cat.get(), kPath, 2);
  ASSERT_LT(small_est, large_est);

  ServerOptions so;
  so.executors = 1;  // single executor: dispatch order == execution order
  so.start_paused = true;
  so.small_query_bytes = (small_est + large_est) / 2;
  so.small_per_large = 2;
  QueryServer server(so);
  auto* session = server.OpenSession();

  // Seeded arrival order: one large first, then four smalls, then another
  // large. Expected dispatch: two smalls, the owed large, the remaining
  // smalls, the last large.
  std::vector<QueryHandle> handles;
  handles.push_back(session->Submit(MakeRequest(large_cat.get(), kPath, 2)));
  for (int i = 0; i < 4; ++i) {
    handles.push_back(
        session->Submit(MakeRequest(small_cat.get(), kTriangle, 2)));
  }
  handles.push_back(session->Submit(MakeRequest(large_cat.get(), kPath, 2)));
  server.Start();
  server.Drain();

  ASSERT_EQ(handles[0].Get().cost_class, "large");
  ASSERT_EQ(handles[1].Get().cost_class, "small");
  std::vector<uint64_t> seqs;
  for (const QueryHandle& h : handles) {
    ASSERT_TRUE(h.Get().status.ok()) << h.Get().status.ToString();
    seqs.push_back(h.Get().dispatch_seq);
  }
  // Arrival:  L1 S1 S2 S3 S4 L2
  // Dispatch: S1 S2 L1 S3 S4 L2  (small first, large after 2 smalls, FIFO
  // within class).
  EXPECT_EQ(seqs, (std::vector<uint64_t>{3, 1, 2, 4, 5, 6}));
  EXPECT_EQ(server.stats().small_dispatched, 4u);
  EXPECT_EQ(server.stats().large_dispatched, 2u);
}

// ---------------------------------------------------------------------------
// Sessions.
// ---------------------------------------------------------------------------

TEST(ServerTest, SessionsAssignDeterministicIds) {
  auto catalog = MakeCatalog(29, 30, 8);
  ServerOptions so;
  QueryServer server(so);
  auto* s1 = server.OpenSession();
  auto* s2 = server.OpenSession();
  auto* named = server.OpenSession("audit");
  EXPECT_EQ(s1->id(), "s1");
  EXPECT_EQ(s2->id(), "s2");
  EXPECT_EQ(named->id(), "audit");
  QueryHandle a = s1->Submit(MakeRequest(catalog.get(), kTriangle));
  QueryHandle b = s1->Submit(MakeRequest(catalog.get(), kTriangle));
  QueryHandle c = s2->Submit(MakeRequest(catalog.get(), kTriangle));
  server.Drain();
  EXPECT_EQ(a.Get().id, "s1.q1");
  EXPECT_EQ(b.Get().id, "s1.q2");
  EXPECT_EQ(c.Get().id, "s2.q1");
}

// ---------------------------------------------------------------------------
// LRU bounds: ad-hoc query text cannot grow the plan cache or the
// in-memory feedback store without limit.
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsedEntry) {
  auto catalog = MakeCatalog(37, 40, 8);
  PlanCache cache(/*max_entries=*/2);
  ASSERT_TRUE(cache.Prepare(kTriangle, 4, catalog.get(), nullptr).ok());
  ASSERT_TRUE(cache.Prepare(kPath, 4, catalog.get(), nullptr).ok());
  // Touch the triangle: the path becomes least recently used.
  ASSERT_TRUE(cache.Prepare(kTriangle, 4, catalog.get(), nullptr).ok());
  // A third distinct entry evicts the path, not the (recently used)
  // triangle.
  ASSERT_TRUE(cache.Prepare(kTriangle, 8, catalog.get(), nullptr).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  PlanCache::Entry e;
  EXPECT_TRUE(cache.Lookup(NormalizeQueryText(kTriangle), 4, &e));
  EXPECT_FALSE(cache.Lookup(NormalizeQueryText(kPath), 4, &e));
}

TEST(ServerTest, PlanCacheEvictionCostsOneReparseNeverWrongResults) {
  auto catalog = MakeCatalog(41, 60, 10);
  ServerOptions so;
  so.executors = 1;
  so.plan_cache_max_entries = 2;
  QueryServer server(so);
  auto* session = server.OpenSession();

  // Three distinct entries through a two-entry cache, then the first
  // query again: its entry was evicted, so the return costs a re-parse
  // (parses == 4, not 3) but still answers correctly.
  QueryHandle first = session->Submit(MakeRequest(catalog.get(), kTriangle));
  server.Drain();
  session->Submit(MakeRequest(catalog.get(), kPath));
  session->Submit(MakeRequest(catalog.get(), kTriangle, 8));
  server.Drain();
  EXPECT_GE(server.plan_cache().stats().evictions, 1u);
  EXPECT_EQ(server.plan_cache().size(), 2u);

  QueryHandle again = session->Submit(MakeRequest(catalog.get(), kTriangle));
  server.Drain();
  ASSERT_TRUE(again.Get().status.ok()) << again.Get().status.ToString();
  EXPECT_FALSE(again.Get().cache_hit) << "evicted entry cannot hit";
  EXPECT_EQ(server.plan_cache().stats().parses, 4u);
  EXPECT_TRUE(again.Get().output.EqualsUnordered(first.Get().output));
}

TEST(ServerTest, FeedbackStoreIsBoundedByLru) {
  auto catalog = MakeCatalog(43, 50, 10);
  ServerOptions so;
  so.executors = 1;
  so.feedback_max_entries = 1;
  QueryServer server(so);
  auto* session = server.OpenSession();
  session->Submit(MakeRequest(catalog.get(), kTriangle));
  session->Submit(MakeRequest(catalog.get(), kPath));
  session->Submit(MakeRequest(catalog.get(), kTriangle, 8));
  server.Drain();
  FeedbackStore fb = server.SnapshotFeedback();
  EXPECT_EQ(fb.queries.size(), 1u);
  // The survivor is the most recent execution's entry.
  EXPECT_EQ(fb.queries[0].workers, 8);
}

// Feedback loop: the second execution of a hot query reuses the cached
// plan and the cache carries the measured peak for admission.
TEST(ServerTest, FeedbackRefreshesCachedPlan) {
  auto catalog = MakeCatalog(31, 120, 12);
  ServerOptions so;
  so.executors = 1;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle first =
      session->Submit(MakeRequest(catalog.get(), kTriangle, 4));
  server.Drain();
  const uint64_t measured = first.Get().metrics.peak_bytes;
  ASSERT_GT(measured, 0u);

  QueryHandle second =
      session->Submit(MakeRequest(catalog.get(), kTriangle, 4));
  server.Drain();
  EXPECT_TRUE(second.Get().cache_hit);
  // Admission now uses the measured figure, not the estimate.
  EXPECT_EQ(second.Get().est_peak_bytes, measured);
  // And the advice was re-derived from measurements.
  FeedbackStore fb = server.SnapshotFeedback();
  ASSERT_EQ(fb.queries.size(), 1u);
  EXPECT_FALSE(fb.queries[0].strategies.empty());
}

}  // namespace
}  // namespace ptp
