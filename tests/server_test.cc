// Serving-layer tests: plan-cache hit path (no re-parse/re-optimize),
// per-query sink isolation under concurrent executors (no cross-charged
// counters or memory), admission control (permanent rejection, queue-then-
// run when the pool frees, graceful hard-budget kResourceExhausted with
// retry-after), deterministic two-level fair scheduling, and session id
// assignment.

#include "server/server.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/resource.h"
#include "plan/strategies.h"
#include "query/normalize_text.h"
#include "query/parser.h"
#include "runtime/parallel.h"
#include "server/plan_cache.h"
#include "storage/catalog.h"
#include "test_util.h"

namespace ptp {
namespace {

// A catalog of random binary relations sized by `tuples`/`domain`, with
// every relation a test query mentions.
std::shared_ptr<Catalog> MakeCatalog(uint64_t seed, size_t tuples,
                                     Value domain) {
  auto catalog = std::make_shared<Catalog>();
  Rng rng(seed);
  for (const char* name : {"R", "S", "U"}) {
    catalog->Put(test::RandomBinaryRelation(name, {"a", "b"}, tuples, domain,
                                            &rng));
  }
  return catalog;
}

QueryRequest MakeRequest(Catalog* catalog, const std::string& text,
                         int workers = 4) {
  QueryRequest req;
  req.text = text;
  req.catalog = catalog;
  req.workers = workers;
  return req;
}

constexpr const char* kTriangle = "T(x,y,z) :- R(x,y), S(y,z), U(z,x).";
constexpr const char* kPath = "P(x,w) :- R(x,y), S(y,z), U(z,w).";

// ---------------------------------------------------------------------------
// Plan cache.
// ---------------------------------------------------------------------------

TEST(ServerTest, PlanCacheHitSkipsParseAndOptimize) {
  auto catalog = MakeCatalog(7, 80, 12);
  ServerOptions so;
  so.executors = 1;
  QueryServer server(so);
  auto* session = server.OpenSession();

  // Three spellings of the same query: different whitespace, AND vs comma,
  // different atom order. One parse, two hits.
  std::vector<QueryHandle> handles;
  handles.push_back(session->Submit(MakeRequest(catalog.get(), kTriangle)));
  handles.push_back(session->Submit(MakeRequest(
      catalog.get(), "T(x,y,z):-S(y,z) AND U(z,x) AND R(x,y)")));
  handles.push_back(session->Submit(MakeRequest(
      catalog.get(), "  T( x , y , z )  :-  R(x,y) ,\tS(y,z), U(z,x) .")));
  server.Drain();

  const Relation& first = handles[0].Get().output;
  for (const QueryHandle& h : handles) {
    const QueryResponse& r = h.Get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.output.EqualsUnordered(first));
  }
  EXPECT_FALSE(handles[0].Get().cache_hit);
  EXPECT_TRUE(handles[1].Get().cache_hit);
  EXPECT_TRUE(handles[2].Get().cache_hit);

  const PlanCache::Stats stats = server.plan_cache().stats();
  EXPECT_EQ(stats.parses, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(server.plan_cache().size(), 1u);
}

TEST(ServerTest, ParseErrorRejectedAtSubmit) {
  auto catalog = MakeCatalog(7, 20, 8);
  ServerOptions so;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle h =
      session->Submit(MakeRequest(catalog.get(), "not a query at all"));
  const QueryResponse& r = h.Get();
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

// ---------------------------------------------------------------------------
// Isolation: concurrently-served queries must not cross-charge sinks.
// ---------------------------------------------------------------------------

// Solo baseline of (query text, strategy): fresh registry + meter, direct
// RunStrategy — exactly what the server's executor does, minus the server.
struct SoloRun {
  QueryMetrics metrics;
  std::vector<std::pair<std::string, uint64_t>> counters;
  Relation output;
};

SoloRun RunSolo(Catalog* catalog, const std::string& text,
                const std::string& strategy, int workers,
                const std::string& faults = "", bool bloom = false,
                double watchdog_straggle_factor = 0) {
  auto parsed = ParseDatalog(text, &catalog->dictionary());
  PTP_CHECK(parsed.ok());
  auto nq = Normalize(*parsed, *catalog);
  PTP_CHECK(nq.ok());
  ShuffleKind shuffle = ShuffleKind::kRegular;
  JoinKind join = JoinKind::kHashJoin;
  for (const auto& [s, j] : AllStrategies()) {
    if (strategy == StrategyName(s, j)) {
      shuffle = s;
      join = j;
    }
  }
  StrategyOptions opts;
  opts.num_workers = workers;
  opts.bloom = bloom;
  opts.recovery.watchdog_straggle_factor = watchdog_straggle_factor;
  // Replaying a served run bit-for-bit means replaying its fault schedule
  // under a private injector, exactly as the server does.
  std::unique_ptr<FaultInjector> injector;
  FaultInjector* prev_injector = nullptr;
  if (!faults.empty()) {
    auto fault_plan = FaultPlan::Parse(faults);
    PTP_CHECK(fault_plan.ok()) << fault_plan.status().ToString();
    injector = std::make_unique<FaultInjector>(std::move(fault_plan).value());
    prev_injector = ActiveFaultInjector();
    SetActiveFaultInjector(injector.get());
  }
  CounterRegistry counters;
  ResourceMeter meter(0, /*hard=*/true);
  CounterRegistry* prev_reg = SetActiveCounterRegistry(&counters);
  ResourceMeter* prev_meter = SetActiveResourceMeter(&meter);
  auto result = RunStrategy(*nq, shuffle, join, opts);
  SetActiveResourceMeter(prev_meter);
  SetActiveCounterRegistry(prev_reg);
  if (injector != nullptr) SetActiveFaultInjector(prev_injector);
  PTP_CHECK(result.ok()) << result.status().ToString();
  SoloRun solo;
  solo.metrics = result->metrics;
  solo.counters = counters.CounterSnapshot();
  solo.output = std::move(result->output);
  return solo;
}

TEST(ServerTest, ConcurrentQueriesBitIdenticalToSoloRuns) {
  auto twitter = MakeCatalog(11, 150, 14);
  auto freebase = MakeCatalog(23, 90, 10);

  ServerOptions so;
  so.executors = 3;
  QueryServer server(so);
  auto* s1 = server.OpenSession();
  auto* s2 = server.OpenSession();

  struct Submitted {
    Catalog* catalog;
    std::string text;
    int workers;
    QueryHandle handle;
  };
  std::vector<Submitted> all;
  // Interleave two sessions over two catalogs and two queries, repeatedly,
  // so executions of different queries overlap in every combination.
  for (int round = 0; round < 6; ++round) {
    all.push_back({twitter.get(), kTriangle, 4,
                   s1->Submit(MakeRequest(twitter.get(), kTriangle, 4))});
    all.push_back({freebase.get(), kPath, 3,
                   s2->Submit(MakeRequest(freebase.get(), kPath, 3))});
  }
  server.Drain();

  for (const Submitted& sub : all) {
    const QueryResponse& r = sub.handle.Get();
    ASSERT_TRUE(r.status.ok()) << r.id << ": " << r.status.ToString();
    // Baseline with the strategy the server actually ran (feedback may
    // upgrade it between rounds); every deterministic figure must match a
    // solo run bit-for-bit.
    SoloRun solo = RunSolo(sub.catalog, sub.text, r.strategy, sub.workers);
    EXPECT_TRUE(r.output.EqualsUnordered(solo.output)) << r.id;
    EXPECT_EQ(r.metrics.output_tuples, solo.metrics.output_tuples) << r.id;
    EXPECT_EQ(r.metrics.TuplesShuffled(), solo.metrics.TuplesShuffled())
        << r.id;
    EXPECT_EQ(r.metrics.max_intermediate_tuples,
              solo.metrics.max_intermediate_tuples)
        << r.id;
    EXPECT_EQ(r.metrics.peak_bytes, solo.metrics.peak_bytes) << r.id;
    EXPECT_EQ(r.metrics.charged_bytes, solo.metrics.charged_bytes) << r.id;
    EXPECT_EQ(r.counters, solo.counters) << r.id << " (" << r.strategy
                                         << "): counter cross-charge";
  }
  EXPECT_EQ(server.stats().completed, all.size());
  EXPECT_EQ(server.stats().failed, 0u);
}

// Regression for the underlying mechanism: active sinks are per thread and
// propagate into pool workers per batch, so two plain threads running
// parallel regions back-to-back never publish into each other's registry.
TEST(ServerTest, ActiveSinksArePerThread) {
  constexpr int kIters = 50;
  auto body = [](CounterRegistry* reg, ResourceMeter* meter,
                 uint64_t stamp) {
    CounterRegistry* prev_reg = SetActiveCounterRegistry(reg);
    ResourceMeter* prev_meter = SetActiveResourceMeter(meter);
    meter->BeginQuery("q");
    for (int i = 0; i < kIters; ++i) {
      Status st = runtime::ParallelFor(4, [&](int /*worker*/) {
        if (CounterRegistry* r = ActiveCounterRegistry()) {
          r->Add("iters", stamp);
        }
        MemCharge(MemCategory::kIntermediate, stamp);
        MemRelease(stamp);
        return Status::OK();
      });
      PTP_CHECK(st.ok());
    }
    SetActiveResourceMeter(prev_meter);
    SetActiveCounterRegistry(prev_reg);
  };
  CounterRegistry reg_a, reg_b;
  ResourceMeter meter_a, meter_b;
  std::thread ta([&] { body(&reg_a, &meter_a, 1); });
  std::thread tb([&] { body(&reg_b, &meter_b, 1000); });
  ta.join();
  tb.join();
  EXPECT_EQ(reg_a.Value("iters"), static_cast<uint64_t>(kIters) * 4 * 1);
  EXPECT_EQ(reg_b.Value("iters"), static_cast<uint64_t>(kIters) * 4 * 1000);
  ASSERT_EQ(meter_a.Snapshot().size(), 1u);
  ASSERT_EQ(meter_b.Snapshot().size(), 1u);
  EXPECT_EQ(meter_a.Snapshot()[0].TotalCharged(),
            static_cast<uint64_t>(kIters) * 4 * 1);
  EXPECT_EQ(meter_b.Snapshot()[0].TotalCharged(),
            static_cast<uint64_t>(kIters) * 4 * 1000);
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

// The peak estimate the admission controller will use for (text, workers).
uint64_t EstimateFor(Catalog* catalog, const std::string& text,
                     int workers) {
  PlanCache scratch;
  auto e = scratch.Prepare(text, workers, catalog, nullptr);
  PTP_CHECK(e.ok()) << e.status().ToString();
  return e->est_peak_bytes;
}

TEST(ServerTest, QueryThatCanNeverFitIsRejectedAtSubmit) {
  auto catalog = MakeCatalog(3, 200, 16);
  const uint64_t est = EstimateFor(catalog.get(), kTriangle, 4);
  ServerOptions so;
  so.memory_pool_bytes = est / 2;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle h = session->Submit(MakeRequest(catalog.get(), kTriangle, 4));
  const QueryResponse& r = h.Get();
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.retry_after_seconds, 0.0);  // permanent, not transient
  EXPECT_EQ(r.dispatch_seq, 0u);          // never dispatched
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST(ServerTest, OversizedQueryQueuesUntilPoolFrees) {
  auto catalog = MakeCatalog(3, 200, 16);
  const uint64_t est = EstimateFor(catalog.get(), kTriangle, 4);
  ServerOptions so;
  so.executors = 2;
  // Pool fits one triangle at a time, never two: the second submission
  // must wait for the first to release its reservation, not run beside it
  // and not be rejected.
  so.memory_pool_bytes = est + est / 2;
  so.start_paused = true;
  QueryServer server(so);
  auto* session = server.OpenSession();
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(session->Submit(MakeRequest(catalog.get(), kTriangle,
                                                  4)));
  }
  server.Start();
  server.Drain();
  for (const QueryHandle& h : handles) {
    EXPECT_TRUE(h.Get().status.ok()) << h.Get().status.ToString();
  }
  EXPECT_EQ(server.stats().completed, 4u);
  EXPECT_EQ(server.stats().rejected, 0u);
  // Dispatches happened (serialized by the pool), in FIFO order.
  std::vector<uint64_t> seqs;
  for (const QueryHandle& h : handles) seqs.push_back(h.Get().dispatch_seq);
  EXPECT_EQ(seqs, (std::vector<uint64_t>{1, 2, 3, 4}));
}

TEST(ServerTest, HardBudgetBreachFailsWithResourceExhausted) {
  auto catalog = MakeCatalog(5, 300, 12);
  ServerOptions so;
  so.executors = 1;
  so.query_budget_bytes = 1024;  // any shuffle materialization breaches
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle h = session->Submit(MakeRequest(catalog.get(), kTriangle, 4));
  const QueryResponse& r = h.Get();
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(r.retry_after_seconds, 0.0);  // transient: the pool drains
  EXPECT_TRUE(r.metrics.failed);
  EXPECT_EQ(r.metrics.fail_code, StatusCode::kResourceExhausted);
  EXPECT_NE(r.metrics.fail_reason.find("hard budget"), std::string::npos)
      << r.metrics.fail_reason;
  // The run's account is booked consistently: the breach counter fired
  // once, and the metered peak indeed exceeds the budget.
  uint64_t breaches = 0;
  for (const auto& [name, value] : r.counters) {
    if (name == "mem.hard_budget_breaches") breaches = value;
  }
  EXPECT_EQ(breaches, 1u);
  EXPECT_GT(r.metrics.peak_bytes, so.query_budget_bytes);
  EXPECT_EQ(server.stats().failed, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
}

// ---------------------------------------------------------------------------
// Fair scheduling.
// ---------------------------------------------------------------------------

TEST(ServerTest, TwoLevelSchedulingIsFairAndDeterministic) {
  auto small_cat = MakeCatalog(13, 40, 8);
  auto large_cat = MakeCatalog(17, 1500, 40);
  const uint64_t small_est = EstimateFor(small_cat.get(), kTriangle, 2);
  const uint64_t large_est = EstimateFor(large_cat.get(), kPath, 2);
  ASSERT_LT(small_est, large_est);

  ServerOptions so;
  so.executors = 1;  // single executor: dispatch order == execution order
  so.start_paused = true;
  so.small_query_bytes = (small_est + large_est) / 2;
  so.small_per_large = 2;
  QueryServer server(so);
  auto* session = server.OpenSession();

  // Seeded arrival order: one large first, then four smalls, then another
  // large. Expected dispatch: two smalls, the owed large, the remaining
  // smalls, the last large.
  std::vector<QueryHandle> handles;
  handles.push_back(session->Submit(MakeRequest(large_cat.get(), kPath, 2)));
  for (int i = 0; i < 4; ++i) {
    handles.push_back(
        session->Submit(MakeRequest(small_cat.get(), kTriangle, 2)));
  }
  handles.push_back(session->Submit(MakeRequest(large_cat.get(), kPath, 2)));
  server.Start();
  server.Drain();

  ASSERT_EQ(handles[0].Get().cost_class, "large");
  ASSERT_EQ(handles[1].Get().cost_class, "small");
  std::vector<uint64_t> seqs;
  for (const QueryHandle& h : handles) {
    ASSERT_TRUE(h.Get().status.ok()) << h.Get().status.ToString();
    seqs.push_back(h.Get().dispatch_seq);
  }
  // Arrival:  L1 S1 S2 S3 S4 L2
  // Dispatch: S1 S2 L1 S3 S4 L2  (small first, large after 2 smalls, FIFO
  // within class).
  EXPECT_EQ(seqs, (std::vector<uint64_t>{3, 1, 2, 4, 5, 6}));
  EXPECT_EQ(server.stats().small_dispatched, 4u);
  EXPECT_EQ(server.stats().large_dispatched, 2u);
}

// ---------------------------------------------------------------------------
// Sessions.
// ---------------------------------------------------------------------------

TEST(ServerTest, SessionsAssignDeterministicIds) {
  auto catalog = MakeCatalog(29, 30, 8);
  ServerOptions so;
  QueryServer server(so);
  auto* s1 = server.OpenSession();
  auto* s2 = server.OpenSession();
  auto* named = server.OpenSession("audit");
  EXPECT_EQ(s1->id(), "s1");
  EXPECT_EQ(s2->id(), "s2");
  EXPECT_EQ(named->id(), "audit");
  QueryHandle a = s1->Submit(MakeRequest(catalog.get(), kTriangle));
  QueryHandle b = s1->Submit(MakeRequest(catalog.get(), kTriangle));
  QueryHandle c = s2->Submit(MakeRequest(catalog.get(), kTriangle));
  server.Drain();
  EXPECT_EQ(a.Get().id, "s1.q1");
  EXPECT_EQ(b.Get().id, "s1.q2");
  EXPECT_EQ(c.Get().id, "s2.q1");
}

// ---------------------------------------------------------------------------
// LRU bounds: ad-hoc query text cannot grow the plan cache or the
// in-memory feedback store without limit.
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsedEntry) {
  auto catalog = MakeCatalog(37, 40, 8);
  PlanCache cache(/*max_entries=*/2);
  ASSERT_TRUE(cache.Prepare(kTriangle, 4, catalog.get(), nullptr).ok());
  ASSERT_TRUE(cache.Prepare(kPath, 4, catalog.get(), nullptr).ok());
  // Touch the triangle: the path becomes least recently used.
  ASSERT_TRUE(cache.Prepare(kTriangle, 4, catalog.get(), nullptr).ok());
  // A third distinct entry evicts the path, not the (recently used)
  // triangle.
  ASSERT_TRUE(cache.Prepare(kTriangle, 8, catalog.get(), nullptr).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  PlanCache::Entry e;
  EXPECT_TRUE(cache.Lookup(NormalizeQueryText(kTriangle), 4, catalog.get(), &e));
  EXPECT_FALSE(cache.Lookup(NormalizeQueryText(kPath), 4, catalog.get(), &e));
}

TEST(PlanCacheTest, SameTextDifferentCatalogIsNotAHit) {
  // Preparation binds relation data into the normalized plan, so an entry
  // must never be shared across catalogs: the second catalog would execute
  // the first catalog's data and inherit its admission estimate.
  auto small = MakeCatalog(37, 40, 8);
  auto large = MakeCatalog(38, 4000, 40);
  PlanCache cache;
  bool hit = true;
  ASSERT_TRUE(cache.Prepare(kTriangle, 4, small.get(), nullptr, &hit).ok());
  EXPECT_FALSE(hit);
  auto e = cache.Prepare(kTriangle, 4, large.get(), nullptr, &hit);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);
  PlanCache::Entry small_e;
  ASSERT_TRUE(
      cache.Lookup(NormalizeQueryText(kTriangle), 4, small.get(), &small_e));
  EXPECT_GT(e->est_peak_bytes, small_e.est_peak_bytes);
}

TEST(ServerTest, PlanCacheEvictionCostsOneReparseNeverWrongResults) {
  auto catalog = MakeCatalog(41, 60, 10);
  ServerOptions so;
  so.executors = 1;
  so.plan_cache_max_entries = 2;
  QueryServer server(so);
  auto* session = server.OpenSession();

  // Three distinct entries through a two-entry cache, then the first
  // query again: its entry was evicted, so the return costs a re-parse
  // (parses == 4, not 3) but still answers correctly.
  QueryHandle first = session->Submit(MakeRequest(catalog.get(), kTriangle));
  server.Drain();
  session->Submit(MakeRequest(catalog.get(), kPath));
  session->Submit(MakeRequest(catalog.get(), kTriangle, 8));
  server.Drain();
  EXPECT_GE(server.plan_cache().stats().evictions, 1u);
  EXPECT_EQ(server.plan_cache().size(), 2u);

  QueryHandle again = session->Submit(MakeRequest(catalog.get(), kTriangle));
  server.Drain();
  ASSERT_TRUE(again.Get().status.ok()) << again.Get().status.ToString();
  EXPECT_FALSE(again.Get().cache_hit) << "evicted entry cannot hit";
  EXPECT_EQ(server.plan_cache().stats().parses, 4u);
  EXPECT_TRUE(again.Get().output.EqualsUnordered(first.Get().output));
}

TEST(ServerTest, FeedbackStoreIsBoundedByLru) {
  auto catalog = MakeCatalog(43, 50, 10);
  ServerOptions so;
  so.executors = 1;
  so.feedback_max_entries = 1;
  QueryServer server(so);
  auto* session = server.OpenSession();
  session->Submit(MakeRequest(catalog.get(), kTriangle));
  session->Submit(MakeRequest(catalog.get(), kPath));
  session->Submit(MakeRequest(catalog.get(), kTriangle, 8));
  server.Drain();
  FeedbackStore fb = server.SnapshotFeedback();
  EXPECT_EQ(fb.queries.size(), 1u);
  // The survivor is the most recent execution's entry.
  EXPECT_EQ(fb.queries[0].workers, 8);
}

// Feedback loop: the second execution of a hot query reuses the cached
// plan and the cache carries the measured peak for admission.
TEST(ServerTest, FeedbackRefreshesCachedPlan) {
  auto catalog = MakeCatalog(31, 120, 12);
  ServerOptions so;
  so.executors = 1;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle first =
      session->Submit(MakeRequest(catalog.get(), kTriangle, 4));
  server.Drain();
  const uint64_t measured = first.Get().metrics.peak_bytes;
  ASSERT_GT(measured, 0u);

  QueryHandle second =
      session->Submit(MakeRequest(catalog.get(), kTriangle, 4));
  server.Drain();
  EXPECT_TRUE(second.Get().cache_hit);
  // Admission now uses the measured figure, not the estimate.
  EXPECT_EQ(second.Get().est_peak_bytes, measured);
  // And the advice was re-derived from measurements.
  FeedbackStore fb = server.SnapshotFeedback();
  ASSERT_EQ(fb.queries.size(), 1u);
  EXPECT_FALSE(fb.queries[0].strategies.empty());
}

// ---------------------------------------------------------------------------
// Query lifecycle: bounded waits, cancellation, deadlines, shedding,
// barrier-checkpoint preemption, fault recovery under concurrent serving.
// ---------------------------------------------------------------------------

size_t TotalRetries(const QueryMetrics& m) {
  size_t total = 0;
  for (const StageMetrics& s : m.stages) total += s.retries;
  for (const ShuffleMetrics& s : m.shuffles) total += s.retries;
  return total;
}

TEST(ServerLifecycleTest, WaitForTimesOutWithoutConsumingTheResult) {
  auto catalog = MakeCatalog(51, 40, 8);
  ServerOptions so;
  so.executors = 1;
  so.start_paused = true;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle h = session->Submit(MakeRequest(catalog.get(), kTriangle));
  // Paused server: the query cannot finish, so the bounded wait reports a
  // distinct timeout status...
  Status timed_out = h.WaitFor(0.01);
  EXPECT_EQ(timed_out.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(h.Done());
  // ...without consuming anything: once the server runs, the same handle
  // still yields the full response.
  server.Start();
  server.Drain();
  EXPECT_TRUE(h.WaitFor(30.0).ok());
  EXPECT_TRUE(h.Done());
  EXPECT_TRUE(h.Get().status.ok()) << h.Get().status.ToString();
}

TEST(ServerLifecycleTest, CancelQueuedQueryResolvesImmediately) {
  auto catalog = MakeCatalog(53, 40, 8);
  ServerOptions so;
  so.executors = 1;
  so.start_paused = true;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle keep = session->Submit(MakeRequest(catalog.get(), kTriangle));
  QueryHandle gone = session->Submit(MakeRequest(catalog.get(), kPath));
  // The server is paused, so s1.q2 is still queued: Cancel resolves it
  // right now, without an executor ever touching it.
  EXPECT_TRUE(session->Cancel("s1.q2"));
  const QueryResponse& r = gone.Get();
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(r.dispatch_seq, 0u);  // never dispatched
  EXPECT_TRUE(r.metrics.failed);
  EXPECT_EQ(r.metrics.fail_code, StatusCode::kCancelled);
  EXPECT_TRUE(r.output.empty());
  EXPECT_TRUE(r.lifecycle.cancelled);
  // A resolved id is gone: cancelling again reports unknown.
  EXPECT_FALSE(session->Cancel("s1.q2"));
  server.Start();
  server.Drain();
  EXPECT_TRUE(keep.Get().status.ok()) << keep.Get().status.ToString();
  EXPECT_EQ(server.stats().cancelled, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(ServerLifecycleTest, CancelKnobStopsARunningQueryAtAnExactPoll) {
  auto catalog = MakeCatalog(55, 120, 12);
  ServerOptions so;
  so.executors = 1;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryRequest req = MakeRequest(catalog.get(), kTriangle);
  req.cancel_after_polls = 3;  // the dispatch poll plus two engine polls
  QueryHandle h = session->Submit(req);
  server.Drain();
  const QueryResponse& r = h.Get();
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(r.metrics.failed);
  EXPECT_EQ(r.metrics.fail_code, StatusCode::kCancelled);
  EXPECT_TRUE(r.lifecycle.cancelled);
  EXPECT_EQ(r.lifecycle.polls, 3u);
  EXPECT_GE(r.dispatch_seq, 1u);
  EXPECT_TRUE(r.output.empty());
  EXPECT_EQ(server.stats().cancelled, 1u);
  // A graceful FAIL still counts as a completed run, and as a failed one.
  EXPECT_EQ(server.stats().completed, 1u);
  EXPECT_EQ(server.stats().failed, 1u);
}

TEST(ServerLifecycleTest, DeadlineExpiredInQueueResolvesAtDispatch) {
  auto catalog = MakeCatalog(57, 40, 8);
  ServerOptions so;
  so.executors = 1;
  so.start_paused = true;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryRequest req = MakeRequest(catalog.get(), kTriangle);
  req.deadline_seconds = 1e-9;  // expires while the server is still paused
  QueryHandle h = session->Submit(req);
  server.Start();
  server.Drain();
  const QueryResponse& r = h.Get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.metrics.failed);
  EXPECT_EQ(r.metrics.fail_code, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.lifecycle.deadline_exceeded);
  EXPECT_EQ(r.lifecycle.polls, 1u);  // caught at the dispatch poll
  EXPECT_GE(r.dispatch_seq, 1u);     // dispatched, never entered the engine
  EXPECT_TRUE(r.output.empty());
  EXPECT_EQ(server.stats().deadline_exceeded, 1u);
}

TEST(ServerLifecycleTest, DefaultDeadlineAppliesWhenTheRequestSetsNone) {
  auto catalog = MakeCatalog(57, 40, 8);
  ServerOptions so;
  so.executors = 1;
  so.start_paused = true;
  so.default_deadline_seconds = 1e-9;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle h = session->Submit(MakeRequest(catalog.get(), kTriangle));
  server.Start();
  server.Drain();
  EXPECT_EQ(h.Get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.stats().deadline_exceeded, 1u);
}

TEST(ServerLifecycleTest, MidRunDeadlineKeepsPartialMetrics) {
  auto catalog = MakeCatalog(59, 120, 12);
  ServerOptions so;
  so.executors = 1;
  QueryServer server(so);
  auto* session = server.OpenSession();
  // Pin the strategy so both runs walk the identical poll sequence (the
  // feedback loop may otherwise upgrade the advised plan between them).
  QueryRequest ref_req = MakeRequest(catalog.get(), kTriangle);
  ref_req.force_strategy = true;
  ref_req.shuffle = ShuffleKind::kRegular;
  ref_req.join = JoinKind::kHashJoin;
  QueryHandle ref = session->Submit(ref_req);
  server.Drain();
  ASSERT_TRUE(ref.Get().status.ok()) << ref.Get().status.ToString();
  const uint64_t total_polls = ref.Get().lifecycle.polls;
  ASSERT_GT(total_polls, 2u);

  // The deadline trips at the second-to-last poll point, deep in the run:
  // the account keeps the work done up to the trip, the output is dropped.
  QueryRequest req = ref_req;
  req.deadline_after_polls = total_polls - 1;
  QueryHandle h = session->Submit(req);
  server.Drain();
  const QueryResponse& r = h.Get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.metrics.failed);
  EXPECT_TRUE(r.lifecycle.deadline_exceeded);
  EXPECT_EQ(r.lifecycle.polls, total_polls - 1);
  EXPECT_GT(r.metrics.TuplesShuffled(), 0u);
  EXPECT_TRUE(r.output.empty());
  EXPECT_EQ(server.stats().deadline_exceeded, 1u);
}

TEST(ServerLifecycleTest, OverloadShedsWithComputedRetryAfter) {
  auto catalog = MakeCatalog(61, 40, 8);
  ServerOptions so;
  so.executors = 1;
  so.start_paused = true;
  so.max_queue_depth = 2;
  QueryServer server(so);
  auto* session = server.OpenSession();
  QueryHandle a = session->Submit(MakeRequest(catalog.get(), kTriangle));
  QueryHandle b = session->Submit(MakeRequest(catalog.get(), kPath));
  // The third submission finds the queue at its cap and is shed
  // synchronously.
  QueryHandle c = session->Submit(MakeRequest(catalog.get(), kTriangle, 8));
  ASSERT_TRUE(c.Done());
  const QueryResponse& shed = c.Get();
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status.message().find("admission queue full"),
            std::string::npos)
      << shed.status.ToString();
  // Not a placeholder: two queued not-yet-measured queries at the nominal
  // 50 ms each across one executor lane = 100 ms, exactly.
  EXPECT_DOUBLE_EQ(shed.retry_after_seconds, 0.1);
  EXPECT_EQ(server.stats().shed, 1u);
  EXPECT_EQ(server.stats().rejected, 1u);

  server.Start();
  server.Drain();
  EXPECT_TRUE(a.Get().status.ok()) << a.Get().status.ToString();
  EXPECT_TRUE(b.Get().status.ok()) << b.Get().status.ToString();
  EXPECT_EQ(server.stats().completed, 2u);
  // Once the backlog drained, the same submission is admitted again.
  QueryHandle d = session->Submit(MakeRequest(catalog.get(), kTriangle, 8));
  server.Drain();
  EXPECT_TRUE(d.Get().status.ok()) << d.Get().status.ToString();
  EXPECT_EQ(server.stats().shed, 1u);
}

TEST(ServerLifecycleTest, SmallBacklogPreemptsRunningLargeBitIdentically) {
  auto small_cat = MakeCatalog(13, 40, 8);
  auto large_cat = MakeCatalog(17, 4000, 40);
  const uint64_t small_est = EstimateFor(small_cat.get(), kTriangle, 2);
  const uint64_t large_est = EstimateFor(large_cat.get(), kTriangle, 4);
  ASSERT_LT(small_est, large_est);

  // The preemption request must land while the large query is still
  // between round barriers — a real-time window (its first join round, on
  // this catalog tens of milliseconds wide against a cache-hit submit).
  // The scenario retries a few times before declaring the policy broken;
  // the bit-identity requirement below holds on whichever attempt won.
  QueryResponse large_response;
  uint64_t suspended = 0;
  for (int attempt = 0; attempt < 5 && suspended == 0; ++attempt) {
    ServerOptions so;
    so.executors = 1;
    so.small_query_bytes = (small_est + large_est) / 2;
    so.preempt_small_backlog = 1;
    QueryServer server(so);
    auto* session = server.OpenSession();
    // Warm the plan cache so the triggering submission below is a cache
    // hit that reaches the scheduler with minimal latency.
    session->Submit(MakeRequest(small_cat.get(), kTriangle, 2));
    server.Drain();

    // The large query runs alone first — pinned to the multi-round
    // regular shuffle so suspension has barriers to honor...
    QueryRequest large = MakeRequest(large_cat.get(), kTriangle, 4);
    large.force_strategy = true;
    large.shuffle = ShuffleKind::kRegular;
    large.join = JoinKind::kHashJoin;
    QueryHandle lh = session->Submit(large);
    while (server.stats().large_dispatched == 0) std::this_thread::yield();

    // ...then a small query crosses the preemption threshold: the running
    // large query is asked to checkpoint at its next round barrier and the
    // freed executor serves the small query first.
    QueryHandle sh =
        session->Submit(MakeRequest(small_cat.get(), kTriangle, 2));
    server.Drain();

    ASSERT_TRUE(lh.Get().status.ok()) << lh.Get().status.ToString();
    ASSERT_TRUE(sh.Get().status.ok()) << sh.Get().status.ToString();
    large_response = lh.Get();
    suspended = server.stats().suspended;
    if (suspended > 0) {
      EXPECT_EQ(server.stats().resumed, suspended);
      EXPECT_GE(large_response.lifecycle.suspends, 1u);
      EXPECT_EQ(large_response.lifecycle.suspends,
                large_response.lifecycle.resumes);
    }
  }
  EXPECT_GE(suspended, 1u) << "preemption never captured a checkpoint";

  // Preemption must be invisible in the result: output, every
  // deterministic metric, and the memory account all match an
  // uninterrupted solo run of the same pinned plan.
  const QueryResponse& lr = large_response;
  SoloRun solo = RunSolo(large_cat.get(), kTriangle, "RS_HJ", 4);
  EXPECT_TRUE(lr.output.EqualsUnordered(solo.output));
  EXPECT_EQ(lr.metrics.output_tuples, solo.metrics.output_tuples);
  EXPECT_EQ(lr.metrics.TuplesShuffled(), solo.metrics.TuplesShuffled());
  EXPECT_EQ(lr.metrics.max_intermediate_tuples,
            solo.metrics.max_intermediate_tuples);
  EXPECT_EQ(lr.metrics.peak_bytes, solo.metrics.peak_bytes);
  EXPECT_EQ(lr.metrics.charged_bytes, solo.metrics.charged_bytes);
  EXPECT_EQ(lr.counters, solo.counters) << "suspension leaked into counters";
}

// Satellite proof: one query recovers from an injected mid-shuffle fault
// while neighbours execute concurrently (watchdog armed), and every
// response — recovered and clean alike — is bit-identical to a solo run
// replaying the same plan and fault schedule.
TEST(ServerLifecycleTest, ConcurrentFaultRecoveryMatchesSoloReplay) {
  auto twitter = MakeCatalog(11, 150, 14);
  auto freebase = MakeCatalog(23, 90, 10);
  // Drops one channel of the first exchange on its first attempt: the
  // recovery ladder retries the exchange and converges.
  constexpr const char* kMidShuffleFault = "drop@x=0,p=1,c=2";

  ServerOptions so;
  so.executors = 3;
  so.watchdog_straggle_factor = 4;  // armed; nothing straggles
  QueryServer server(so);
  auto* session = server.OpenSession();

  struct Submitted {
    Catalog* catalog;
    std::string text;
    int workers;
    std::string faults;
    QueryHandle handle;
  };
  std::vector<Submitted> all;
  for (int round = 0; round < 3; ++round) {
    QueryRequest faulted = MakeRequest(twitter.get(), kTriangle, 4);
    faulted.faults = kMidShuffleFault;
    faulted.force_strategy = true;  // keep the fault site addressable
    faulted.shuffle = ShuffleKind::kRegular;
    faulted.join = JoinKind::kHashJoin;
    all.push_back({twitter.get(), kTriangle, 4, kMidShuffleFault,
                   session->Submit(faulted)});
    all.push_back({freebase.get(), kPath, 3, "",
                   session->Submit(MakeRequest(freebase.get(), kPath, 3))});
    all.push_back({twitter.get(), kPath, 4, "",
                   session->Submit(MakeRequest(twitter.get(), kPath, 4))});
  }
  server.Drain();

  for (const Submitted& sub : all) {
    const QueryResponse& r = sub.handle.Get();
    ASSERT_TRUE(r.status.ok()) << r.id << ": " << r.status.ToString();
    EXPECT_FALSE(r.metrics.failed) << r.id;
    if (!sub.faults.empty()) {
      EXPECT_GE(TotalRetries(r.metrics), 1u)
          << r.id << ": the injected fault never fired";
    }
    SoloRun solo =
        RunSolo(sub.catalog, sub.text, r.strategy, sub.workers, sub.faults,
                r.bloom, so.watchdog_straggle_factor);
    EXPECT_TRUE(r.output.EqualsUnordered(solo.output)) << r.id;
    EXPECT_EQ(r.metrics.output_tuples, solo.metrics.output_tuples) << r.id;
    EXPECT_EQ(r.metrics.TuplesShuffled(), solo.metrics.TuplesShuffled())
        << r.id;
    EXPECT_EQ(r.metrics.peak_bytes, solo.metrics.peak_bytes) << r.id;
    EXPECT_EQ(r.metrics.charged_bytes, solo.metrics.charged_bytes) << r.id;
    EXPECT_EQ(TotalRetries(r.metrics), TotalRetries(solo.metrics)) << r.id;
    EXPECT_EQ(r.counters, solo.counters)
        << r.id << " (" << r.strategy << "): counter divergence";
  }
  EXPECT_EQ(server.stats().completed, all.size());
  EXPECT_EQ(server.stats().failed, 0u);
}

}  // namespace
}  // namespace ptp
