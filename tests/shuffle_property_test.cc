// Property tests for the shuffle layer: content preservation,
// co-partitioning, determinism, and the HyperCube meeting guarantee across
// randomized inputs and cluster sizes.

#include <map>
#include <set>

#include "exec/local_ops.h"
#include "exec/shuffle.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ptp {
namespace {

class HashShuffleSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HashShuffleSweep, PreservesAndCoPartitions) {
  const auto [seed, workers] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 300, 40, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, workers);
  ShuffleResult sr = HashShuffle(dist, {1}, workers, 12345, "t").value();
  EXPECT_TRUE(Gather(sr.data).EqualsUnordered(rel));
  EXPECT_EQ(sr.metrics.tuples_sent, rel.NumTuples());
  std::map<Value, size_t> home;
  for (size_t w = 0; w < sr.data.size(); ++w) {
    for (size_t row = 0; row < sr.data[w].NumTuples(); ++row) {
      auto [it, inserted] = home.emplace(sr.data[w].At(row, 1), w);
      EXPECT_EQ(it->second, w);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsWorkers, HashShuffleSweep,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(1, 2, 5, 16)));

TEST(HashShuffleTest, DeterministicAcrossCalls) {
  Rng rng(5);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 100, 20, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, 6);
  ShuffleResult a = HashShuffle(dist, {0}, 6, 9, "a").value();
  ShuffleResult b = HashShuffle(dist, {0}, 6, 9, "b").value();
  for (size_t w = 0; w < 6; ++w) {
    EXPECT_EQ(a.data[w].data(), b.data[w].data());
  }
}

TEST(HashShuffleTest, DifferentSaltsGiveDifferentPartitions) {
  Rng rng(6);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 400, 200, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, 8);
  ShuffleResult a = HashShuffle(dist, {0}, 8, 1, "a").value();
  ShuffleResult b = HashShuffle(dist, {0}, 8, 2, "b").value();
  bool any_difference = false;
  for (size_t w = 0; w < 8; ++w) {
    if (a.data[w].data() != b.data[w].data()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

// HyperCube property over random configurations: every pair of tuples that
// joins must meet on exactly one worker under the identity cell map.
class HypercubeMeetSweep : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeMeetSweep, BinaryJoinMeetsExactlyOnce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  HypercubeConfig config;
  config.join_vars = {"a", "b", "c"};
  config.dims = {static_cast<int>(1 + rng.Uniform(4)),
                 static_cast<int>(1 + rng.Uniform(4)),
                 static_cast<int>(1 + rng.Uniform(4))};
  config.salt = rng.Next();
  HypercubeRouter r1(config, {"a", "b"});
  HypercubeRouter r2(config, {"b", "c"});
  HypercubeRouter r3(config, {"c", "a"});
  for (int trial = 0; trial < 50; ++trial) {
    const Value a = static_cast<Value>(rng.Uniform(100));
    const Value b = static_cast<Value>(rng.Uniform(100));
    const Value c = static_cast<Value>(rng.Uniform(100));
    Value t1[] = {a, b}, t2[] = {b, c}, t3[] = {c, a};
    std::vector<int> c1, c2, c3;
    r1.Route(t1, &c1);
    r2.Route(t2, &c2);
    r3.Route(t3, &c3);
    std::set<int> s1(c1.begin(), c1.end());
    std::set<int> s2(c2.begin(), c2.end());
    std::set<int> s3(c3.begin(), c3.end());
    int common = 0;
    for (int cell : s1) {
      if (s2.count(cell) && s3.count(cell)) ++common;
    }
    EXPECT_EQ(common, 1) << "dims " << config.dims[0] << "x"
                         << config.dims[1] << "x" << config.dims[2];
    // Replication factors are exactly the unbound dimension products.
    EXPECT_EQ(static_cast<int>(c1.size()), config.dims[2]);
    EXPECT_EQ(static_cast<int>(c2.size()), config.dims[0]);
    EXPECT_EQ(static_cast<int>(c3.size()), config.dims[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypercubeMeetSweep, ::testing::Range(0, 10));

TEST(HypercubeShuffleTest, SharedWorkerReceivesOneCopy) {
  // With a cell map sending all cells to one worker, each tuple must be
  // physically sent once despite multiple destination cells.
  Relation rel("R", Schema{"x", "y"});
  for (Value i = 0; i < 50; ++i) rel.AddTuple({i, i + 1});
  HypercubeConfig config;
  config.join_vars = {"x", "y", "z"};
  config.dims = {2, 2, 4};
  std::vector<int> all_to_zero(static_cast<size_t>(config.NumCells()), 0);
  ShuffleResult sr = HypercubeShuffle(PartitionRoundRobin(rel, 4), {"x", "y"},
                                      config, all_to_zero, 4, "t")
                         .value();
  EXPECT_EQ(sr.metrics.tuples_sent, rel.NumTuples());  // one copy each
  EXPECT_EQ(sr.data[0].NumTuples(), rel.NumTuples());
}

TEST(SkewAwareShuffleTest, JoinResultUnchangedAndSkewBounded) {
  // One mega-hub key y=0 would normally drown a single worker.
  Relation left("L", Schema{"x", "y"});
  Relation right("R", Schema{"y", "z"});
  for (Value i = 0; i < 600; ++i) left.AddTuple({i, 0});
  for (Value i = 0; i < 100; ++i) left.AddTuple({i, 1 + i % 7});
  for (Value i = 0; i < 40; ++i) right.AddTuple({0, i});
  for (Value i = 0; i < 40; ++i) right.AddTuple({1 + i % 7, 100 + i});

  const int kW = 8;
  auto dl = PartitionRoundRobin(left, kW);
  auto dr = PartitionRoundRobin(right, kW);
  SkewAwareShuffleResult sa =
      SkewAwareJoinShuffle(dl, {1}, dr, {0}, kW, 3, 2.0, "t").value();
  EXPECT_GE(sa.heavy_keys, 1u);

  // Left content preserved exactly; right replicated only for heavy keys.
  EXPECT_TRUE(Gather(sa.left).EqualsUnordered(left));
  EXPECT_GT(sa.right_metrics.tuples_sent, right.NumTuples());

  // Consumer skew on the left must be bounded (plain hashing would put all
  // 600 hub tuples on one worker: skew ~6.9).
  ShuffleResult plain = HashShuffle(dl, {1}, kW, 3, "plain").value();
  EXPECT_GT(plain.metrics.consumer_skew, 3.0);
  EXPECT_LT(sa.left_metrics.consumer_skew, 2.0);

  // The distributed join result matches the plain-shuffle join.
  auto join_all = [&](const DistributedRelation& a,
                      const DistributedRelation& b) {
    Relation out("out", Schema{"x", "y", "z"});
    for (int w = 0; w < kW; ++w) {
      Relation j = HashJoinLocal(a[static_cast<size_t>(w)],
                                 b[static_cast<size_t>(w)]);
      Relation p = ProjectToVars(j, {"x", "y", "z"});
      out.mutable_data().insert(out.mutable_data().end(), p.data().begin(),
                                p.data().end());
    }
    return out;
  };
  ShuffleResult plain_r = HashShuffle(dr, {0}, kW, 3, "plain_r").value();
  Relation expected = join_all(plain.data, plain_r.data);
  Relation actual = join_all(sa.left, sa.right);
  EXPECT_TRUE(actual.EqualsUnordered(expected));
}

TEST(SkewAwareShuffleTest, NoHeavyKeysDegeneratesToHashShuffle) {
  Rng rng(12);
  Relation left = test::RandomBinaryRelation("L", {"x", "y"}, 200, 190, &rng);
  Relation right = test::RandomBinaryRelation("R", {"y", "z"}, 200, 190, &rng);
  auto dl = PartitionRoundRobin(left, 4);
  auto dr = PartitionRoundRobin(right, 4);
  SkewAwareShuffleResult sa =
      SkewAwareJoinShuffle(dl, {1}, dr, {0}, 4, 3, 4.0, "t").value();
  EXPECT_EQ(sa.heavy_keys, 0u);
  EXPECT_EQ(sa.right_metrics.tuples_sent, right.NumTuples());
}

TEST(BroadcastShuffleTest, ProducerLoadsBalanced) {
  Rng rng(7);
  Relation rel = test::RandomBinaryRelation("R", {"x", "y"}, 128, 30, &rng);
  DistributedRelation dist = PartitionRoundRobin(rel, 4);
  ShuffleResult sr = BroadcastShuffle(dist, 4, "b").value();
  EXPECT_NEAR(sr.metrics.producer_skew, 1.0, 0.05);
  EXPECT_DOUBLE_EQ(sr.metrics.consumer_skew, 1.0);
}

}  // namespace
}  // namespace ptp
