// Property tests for the simplex solver: random small LPs validated against
// a dense grid search over the feasible region.

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "lp/simplex.h"

namespace ptp {
namespace {

using Rel = LinearProgram::Relation;

// Brute-force optimum of min c.x over {x >= 0, A x <= b} by scanning a fine
// grid over [0, 10]^2. Good enough to bound the true optimum within the
// grid resolution for the bounded instances we generate.
double GridOptimum(const std::vector<double>& c,
                   const std::vector<std::vector<double>>& rows,
                   const std::vector<double>& rhs) {
  double best = std::numeric_limits<double>::infinity();
  const int kSteps = 200;
  for (int i = 0; i <= kSteps; ++i) {
    for (int j = 0; j <= kSteps; ++j) {
      const double x = 10.0 * i / kSteps;
      const double y = 10.0 * j / kSteps;
      bool feasible = true;
      for (size_t r = 0; r < rows.size(); ++r) {
        if (rows[r][0] * x + rows[r][1] * y > rhs[r] + 1e-9) {
          feasible = false;
          break;
        }
      }
      if (feasible) best = std::min(best, c[0] * x + c[1] * y);
    }
  }
  return best;
}

class SimplexRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomSweep, MatchesGridSearch) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  // Random bounded instance: 3 constraints with positive coefficients (so
  // the region is bounded within [0,10]^2 by adding x,y <= 10), mixed-sign
  // objective.
  std::vector<double> c = {rng.NextDouble() * 4 - 2, rng.NextDouble() * 4 - 2};
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  for (int i = 0; i < 3; ++i) {
    rows.push_back({rng.NextDouble() * 2, rng.NextDouble() * 2});
    rhs.push_back(1.0 + rng.NextDouble() * 9);
  }
  rows.push_back({1, 0});
  rhs.push_back(10);
  rows.push_back({0, 1});
  rhs.push_back(10);

  LinearProgram lp(c);
  for (size_t i = 0; i < rows.size(); ++i) {
    lp.AddConstraint(rows[i], Rel::kLe, rhs[i]);
  }
  auto sol = lp.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  const double grid = GridOptimum(c, rows, rhs);
  // Simplex must be at least as good as the grid (it is exact) and the grid
  // approximates the optimum to ~0.15 given the Lipschitz constants here.
  EXPECT_LE(sol->objective, grid + 1e-6);
  EXPECT_GE(sol->objective, grid - 0.2);
  // The returned point must be feasible.
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_LE(rows[i][0] * sol->x[0] + rows[i][1] * sol->x[1],
              rhs[i] + 1e-6);
  }
  EXPECT_GE(sol->x[0], -1e-9);
  EXPECT_GE(sol->x[1], -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomSweep, ::testing::Range(0, 20));

TEST(SimplexTest, DegenerateRedundantConstraints) {
  // Duplicated and redundant constraints must not cycle (Bland's rule).
  LinearProgram lp({1.0, 1.0});
  for (int i = 0; i < 5; ++i) {
    lp.AddConstraint({1, 1}, Rel::kGe, 2);
    lp.AddConstraint({1, 0}, Rel::kLe, 5);
  }
  auto sol = lp.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 2.0, 1e-6);
}

TEST(SimplexTest, EqualityPlusInequalityMix) {
  // min x + 2y + 3z  s.t. x + y + z = 6, y >= 1, z <= 2.
  LinearProgram lp({1, 2, 3});
  lp.AddConstraint({1, 1, 1}, Rel::kEq, 6);
  lp.AddConstraint({0, 1, 0}, Rel::kGe, 1);
  lp.AddConstraint({0, 0, 1}, Rel::kLe, 2);
  auto sol = lp.Solve();
  ASSERT_TRUE(sol.ok());
  // Optimal: x = 5, y = 1, z = 0 -> 7.
  EXPECT_NEAR(sol->objective, 7.0, 1e-6);
}

}  // namespace
}  // namespace ptp
