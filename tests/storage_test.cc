#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "storage/dictionary.h"
#include "storage/relation.h"
#include "storage/sort.h"
#include "storage/stats.h"

namespace ptp {
namespace {

TEST(SchemaTest, IndexOfAndArity) {
  Schema s{"x", "y", "z"};
  EXPECT_EQ(s.arity(), 3u);
  EXPECT_EQ(s.IndexOf("x"), 0);
  EXPECT_EQ(s.IndexOf("z"), 2);
  EXPECT_EQ(s.IndexOf("w"), -1);
  EXPECT_EQ(s.ToString(), "(x, y, z)");
}

TEST(RelationTest, AddAndAccess) {
  Relation r("R", Schema{"a", "b"});
  r.AddTuple({1, 2});
  r.AddTuple({3, 4});
  EXPECT_EQ(r.NumTuples(), 2u);
  EXPECT_EQ(r.At(0, 0), 1);
  EXPECT_EQ(r.At(1, 1), 4);
  EXPECT_EQ(r.GetTuple(1), (Tuple{3, 4}));
}

TEST(RelationTest, SortLexOrdersRows) {
  Relation r("R", Schema{"a", "b"});
  r.AddTuple({3, 1});
  r.AddTuple({1, 2});
  r.AddTuple({1, 1});
  r.AddTuple({2, 9});
  r.SortLex();
  EXPECT_TRUE(r.IsSortedLex());
  EXPECT_EQ(r.GetTuple(0), (Tuple{1, 1}));
  EXPECT_EQ(r.GetTuple(1), (Tuple{1, 2}));
  EXPECT_EQ(r.GetTuple(2), (Tuple{2, 9}));
  EXPECT_EQ(r.GetTuple(3), (Tuple{3, 1}));
}

TEST(RelationTest, DedupSortedRemovesDuplicates) {
  Relation r("R", Schema{"a", "b"});
  r.AddTuple({1, 1});
  r.AddTuple({1, 1});
  r.AddTuple({1, 2});
  r.AddTuple({1, 2});
  r.AddTuple({2, 2});
  r.DedupSorted();
  EXPECT_EQ(r.NumTuples(), 3u);
}

TEST(RelationTest, PermuteColumnsReordersAndProjects) {
  Relation r("R", Schema{"a", "b", "c"});
  r.AddTuple({1, 2, 3});
  Relation p = r.PermuteColumns({2, 0}, "P");
  EXPECT_EQ(p.schema().names(), (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(p.GetTuple(0), (Tuple{3, 1}));
}

TEST(RelationTest, EqualsUnorderedIgnoresRowOrder) {
  Relation a("A", Schema{"x"});
  a.AddTuple({1});
  a.AddTuple({2});
  Relation b("B", Schema{"x"});
  b.AddTuple({2});
  b.AddTuple({1});
  EXPECT_TRUE(a.EqualsUnordered(b));
  b.AddTuple({3});
  EXPECT_FALSE(a.EqualsUnordered(b));
}

TEST(SortTest, GenericArityMatchesFixed) {
  // arity 5 goes through the index-sort path; verify against std::sort of
  // materialized tuples.
  Rng rng(9);
  const size_t kArity = 5;
  std::vector<Value> flat;
  std::vector<Tuple> rows;
  for (int i = 0; i < 500; ++i) {
    Tuple t;
    for (size_t k = 0; k < kArity; ++k) {
      t.push_back(static_cast<Value>(rng.Uniform(10)));
    }
    rows.push_back(t);
    flat.insert(flat.end(), t.begin(), t.end());
  }
  SortRowsLex(&flat, kArity);
  std::sort(rows.begin(), rows.end());
  std::vector<Value> expected;
  for (const Tuple& t : rows) expected.insert(expected.end(), t.begin(), t.end());
  EXPECT_EQ(flat, expected);
}

TEST(SortTest, LowerUpperBoundRows) {
  std::vector<Value> data = {1, 1, 1, 2, 2, 1, 2, 2, 3, 1};  // arity 2
  Value key2[] = {2, 0};
  EXPECT_EQ(LowerBoundRows(data, 2, 0, 5, key2, 1), 2u);  // first row with a>=2
  EXPECT_EQ(UpperBoundRows(data, 2, 0, 5, key2, 1), 4u);  // past last a<=2
  Value key22[] = {2, 2};
  EXPECT_EQ(LowerBoundRows(data, 2, 0, 5, key22, 2), 3u);
}

TEST(StatsTest, DistinctAndPrefixCounts) {
  Relation r("R", Schema{"a", "b"});
  r.AddTuple({1, 1});
  r.AddTuple({1, 2});
  r.AddTuple({2, 1});
  r.AddTuple({2, 1});  // duplicate row
  RelationStats s = ComputeStats(r);
  EXPECT_EQ(s.cardinality, 4u);
  EXPECT_EQ(s.distinct_per_column[0], 2u);
  EXPECT_EQ(s.distinct_per_column[1], 2u);
  EXPECT_EQ(s.prefix_distinct[0], 2u);  // V(R, (a))
  EXPECT_EQ(s.prefix_distinct[1], 3u);  // V(R, (a,b))
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  Value a = d.Intern("hello");
  Value b = d.Intern("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("hello"), a);
  EXPECT_EQ(d.String(a), "hello");
  EXPECT_EQ(d.Lookup("nope"), -1);
}

TEST(CatalogTest, PutGetAndNames) {
  Catalog c;
  Relation r("R", Schema{"x"});
  r.AddTuple({1});
  c.Put(std::move(r));
  EXPECT_TRUE(c.Contains("R"));
  auto got = c.Get("R");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->NumTuples(), 1u);
  EXPECT_FALSE(c.Get("S").ok());
  EXPECT_EQ(c.TotalTuples(), 1u);
}

}  // namespace
}  // namespace ptp
