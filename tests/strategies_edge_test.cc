// Edge-case and failure-injection tests for the strategy layer.

#include "gtest/gtest.h"
#include "plan/strategies.h"
#include "query/parser.h"
#include "test_util.h"

namespace ptp {
namespace {

NormalizedQuery TriangleOn(Catalog catalog) {
  auto parsed = ParseDatalog("T(x,y,z) :- R(x,y), S(y,z), U(z,x).", nullptr);
  PTP_CHECK(parsed.ok());
  auto nq = Normalize(*parsed, catalog);
  PTP_CHECK(nq.ok()) << nq.status().ToString();
  return std::move(nq).value();
}

Catalog TriangleCatalog(size_t tuples, uint64_t seed) {
  Rng rng(seed);
  Catalog catalog;
  catalog.Put(test::RandomBinaryRelation("R", {"x", "y"}, tuples, 10, &rng));
  catalog.Put(test::RandomBinaryRelation("S", {"y", "z"}, tuples, 10, &rng));
  catalog.Put(test::RandomBinaryRelation("U", {"z", "x"}, tuples, 10, &rng));
  return catalog;
}

TEST(StrategyEdgeTest, EmptyRelationsYieldEmptyResults) {
  Catalog catalog;
  catalog.Put(Relation("R", Schema{"c1", "c2"}));
  catalog.Put(Relation("S", Schema{"c1", "c2"}));
  catalog.Put(Relation("U", Schema{"c1", "c2"}));
  NormalizedQuery q = TriangleOn(std::move(catalog));
  StrategyOptions opts;
  opts.num_workers = 4;
  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(q, shuffle, join, opts);
    ASSERT_TRUE(result.ok()) << StrategyName(shuffle, join) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->output.NumTuples(), 0u) << StrategyName(shuffle, join);
    EXPECT_FALSE(result->metrics.failed);
  }
}

TEST(StrategyEdgeTest, OneEmptyInputAmongNonEmpty) {
  Catalog catalog = TriangleCatalog(50, 1);
  catalog.Put(Relation("S", Schema{"c1", "c2"}));  // overwrite S with empty
  NormalizedQuery q = TriangleOn(std::move(catalog));
  StrategyOptions opts;
  opts.num_workers = 4;
  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(q, shuffle, join, opts);
    ASSERT_TRUE(result.ok()) << StrategyName(shuffle, join);
    EXPECT_EQ(result->output.NumTuples(), 0u) << StrategyName(shuffle, join);
  }
}

TEST(StrategyEdgeTest, SingleWorkerDegeneratesGracefully) {
  NormalizedQuery q = TriangleOn(TriangleCatalog(80, 2));
  StrategyOptions opts;
  opts.num_workers = 1;
  const Relation* reference = nullptr;
  Relation ref_store;
  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(q, shuffle, join, opts);
    ASSERT_TRUE(result.ok()) << StrategyName(shuffle, join);
    if (reference == nullptr) {
      ref_store = result->output;
      reference = &ref_store;
    } else {
      EXPECT_TRUE(result->output.EqualsUnordered(*reference))
          << StrategyName(shuffle, join);
    }
    // With one worker nothing is really shuffled by HC (replication 1).
    if (shuffle == ShuffleKind::kHypercube) {
      EXPECT_EQ(result->hc_config.NumCells(), 1);
    }
  }
}

TEST(StrategyEdgeTest, ZeroWorkersRejected) {
  NormalizedQuery q = TriangleOn(TriangleCatalog(10, 3));
  StrategyOptions opts;
  opts.num_workers = 0;
  auto result =
      RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin, opts);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrategyEdgeTest, EmptyQueryRejected) {
  NormalizedQuery q;
  StrategyOptions opts;
  auto result =
      RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin, opts);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrategyEdgeTest, BadJoinOrderRejected) {
  NormalizedQuery q = TriangleOn(TriangleCatalog(20, 4));
  StrategyOptions opts;
  opts.num_workers = 2;
  opts.join_order = {0};  // must cover all atoms
  auto result =
      RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin, opts);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrategyEdgeTest, ConstantOnlyPredicateFiltersEverything) {
  Catalog catalog = TriangleCatalog(40, 5);
  auto parsed = ParseDatalog(
      "T(x,y,z) :- R(x,y), S(y,z), U(z,x), 1 > 2.", nullptr);
  ASSERT_TRUE(parsed.ok());
  auto nq = Normalize(*parsed, catalog);
  ASSERT_TRUE(nq.ok());
  StrategyOptions opts;
  opts.num_workers = 3;
  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(*nq, shuffle, join, opts);
    ASSERT_TRUE(result.ok()) << StrategyName(shuffle, join);
    EXPECT_EQ(result->output.NumTuples(), 0u) << StrategyName(shuffle, join);
  }
}

TEST(StrategyEdgeTest, MoreWorkersThanTuples) {
  NormalizedQuery q = TriangleOn(TriangleCatalog(5, 6));
  StrategyOptions opts;
  opts.num_workers = 64;
  const Relation* reference = nullptr;
  Relation ref_store;
  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(q, shuffle, join, opts);
    ASSERT_TRUE(result.ok()) << StrategyName(shuffle, join);
    if (reference == nullptr) {
      ref_store = result->output;
      reference = &ref_store;
    } else {
      EXPECT_TRUE(result->output.EqualsUnordered(*reference));
    }
  }
}

// The wall clock is measured, not modeled: it sums the elapsed times of the
// query's barriers (stages plus shuffles). It may exceed summed in-body
// worker CPU by pool-dispatch overhead, but it can never undercut the
// booked stage barriers, and a successful run books no failed stage.
TEST(StrategyEdgeTest, WallCoversBookedStages) {
  NormalizedQuery q = TriangleOn(TriangleCatalog(200, 7));
  StrategyOptions opts;
  opts.num_workers = 8;
  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(q, shuffle, join, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->metrics.wall_seconds, 0.0)
        << StrategyName(shuffle, join);
    EXPECT_GT(result->metrics.TotalCpuSeconds(), 0.0)
        << StrategyName(shuffle, join);
    double stage_wall = 0;
    for (const StageMetrics& stage : result->metrics.stages) {
      EXPECT_FALSE(stage.failed) << stage.label;
      stage_wall += stage.wall_seconds;
    }
    EXPECT_LE(stage_wall, result->metrics.wall_seconds + 1e-9)
        << StrategyName(shuffle, join);
  }
}

}  // namespace
}  // namespace ptp
