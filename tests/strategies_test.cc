#include "plan/strategies.h"

#include "gtest/gtest.h"
#include "query/parser.h"
#include "runtime/parallel.h"
#include "test_util.h"

namespace ptp {
namespace {

// Builds a normalized query over freshly generated random relations.
NormalizedQuery RandomQuery(const char* text, uint64_t seed, size_t tuples,
                            Value domain) {
  Rng rng(seed);
  auto parsed = ParseDatalog(text, nullptr);
  PTP_CHECK(parsed.ok()) << parsed.status().ToString();
  Catalog catalog;
  for (const Atom& atom : parsed->atoms()) {
    if (!catalog.Contains(atom.relation)) {
      catalog.Put(test::RandomBinaryRelation(
          atom.relation, atom.Variables(), tuples, domain, &rng));
    }
  }
  auto nq = Normalize(*parsed, catalog);
  PTP_CHECK(nq.ok()) << nq.status().ToString();
  return std::move(nq).value();
}

Relation ExpectedOutput(const NormalizedQuery& q) {
  Relation full = test::BruteForceJoin(q);
  Relation projected("expected", Schema(q.head_vars));
  {
    std::vector<int> cols;
    for (const std::string& v : q.head_vars) {
      cols.push_back(full.schema().IndexOf(v));
    }
    projected = full.PermuteColumns(cols, "expected");
  }
  if (q.head_vars.size() < q.Variables().size()) {
    projected.SortAndDedup();
  }
  return projected;
}

struct StrategyCase {
  ShuffleKind shuffle;
  JoinKind join;
};

class AllStrategiesAgree
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllStrategiesAgree, TriangleQuery) {
  const auto [seed, workers] = GetParam();
  NormalizedQuery q = RandomQuery(
      "T(x,y,z) :- R(x,y), S(y,z), U(z,x).", static_cast<uint64_t>(seed),
      100, 14);
  Relation expected = ExpectedOutput(q);
  StrategyOptions opts;
  opts.num_workers = workers;
  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(q, shuffle, join, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_FALSE(result->metrics.failed)
        << StrategyName(shuffle, join) << ": "
        << result->metrics.fail_reason;
    EXPECT_TRUE(result->output.EqualsUnordered(expected))
        << StrategyName(shuffle, join) << " wrong result ("
        << result->output.NumTuples() << " vs " << expected.NumTuples()
        << " tuples), workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWorkers, AllStrategiesAgree,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 3, 8, 16)));

TEST(StrategiesTest, AcyclicPathQueryAgrees) {
  NormalizedQuery q = RandomQuery(
      "P(x,w) :- R(x,y), S(y,z), U(z,w).", 77, 120, 12);
  Relation expected = ExpectedOutput(q);
  StrategyOptions opts;
  opts.num_workers = 8;
  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(q, shuffle, join, opts);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->metrics.failed);
    EXPECT_TRUE(result->output.EqualsUnordered(expected))
        << StrategyName(shuffle, join);
  }
}

TEST(StrategiesTest, PredicateQueryAgrees) {
  NormalizedQuery q = RandomQuery(
      "Q(x,z) :- R(x,y), S(y,z), x < z.", 31, 120, 12);
  Relation expected = ExpectedOutput(q);
  StrategyOptions opts;
  opts.num_workers = 6;
  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(q, shuffle, join, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->output.EqualsUnordered(expected))
        << StrategyName(shuffle, join);
  }
}

TEST(StrategiesTest, FourCliqueAgrees) {
  NormalizedQuery q = RandomQuery(
      "C(x,y,z,p) :- R(x,y), S(y,z), U(z,p), P(p,x), K(x,z), L(y,p).", 5,
      90, 10);
  Relation expected = ExpectedOutput(q);
  StrategyOptions opts;
  opts.num_workers = 16;
  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(q, shuffle, join, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->output.EqualsUnordered(expected))
        << StrategyName(shuffle, join);
  }
}

TEST(StrategiesTest, SingleAtomQueryProjects) {
  NormalizedQuery q = RandomQuery("Q(x) :- R(x,y).", 8, 50, 10);
  Relation expected = ExpectedOutput(q);
  StrategyOptions opts;
  opts.num_workers = 4;
  auto result =
      RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->output.EqualsUnordered(expected));
}

TEST(StrategiesTest, HypercubeShufflesLessThanBroadcastOnTriangles) {
  // The headline claim of Q1: HC moves ~4x less data than RS and ~10x less
  // than BR when intermediate results are large. With random (not skewed)
  // data RS can be competitive, so only assert HC < BR here.
  NormalizedQuery q = RandomQuery(
      "T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 10, 400, 25);
  StrategyOptions opts;
  opts.num_workers = 16;
  auto hc = RunStrategy(q, ShuffleKind::kHypercube, JoinKind::kTributary, opts);
  auto br = RunStrategy(q, ShuffleKind::kBroadcast, JoinKind::kTributary, opts);
  ASSERT_TRUE(hc.ok() && br.ok());
  EXPECT_LT(hc->metrics.TuplesShuffled(), br->metrics.TuplesShuffled());
}

TEST(StrategiesTest, BudgetExhaustionReportsFailNotError) {
  // A query with a huge intermediate and a tiny budget must FAIL gracefully.
  NormalizedQuery q = RandomQuery(
      "T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 12, 300, 6);  // dense -> big
  StrategyOptions opts;
  opts.num_workers = 4;
  opts.intermediate_budget = 100;
  auto rs = RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin, opts);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(rs->metrics.failed);
  EXPECT_FALSE(rs->metrics.fail_reason.empty());
  // The stage that aborted the run is marked failed (and only that one).
  ASSERT_FALSE(rs->metrics.stages.empty());
  EXPECT_TRUE(rs->metrics.stages.back().failed);
  for (size_t i = 0; i + 1 < rs->metrics.stages.size(); ++i) {
    EXPECT_FALSE(rs->metrics.stages[i].failed);
  }
}

TEST(StrategiesTest, AbortSemanticsIdenticalAcrossThreadCounts) {
  // A failing run must reach the same verdict — same fail reason, same
  // booked stages, same failed-stage marking — whether the workers ran
  // serialized or concurrently.
  NormalizedQuery q = RandomQuery(
      "T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 12, 300, 6);
  StrategyOptions opts;
  opts.num_workers = 8;
  opts.intermediate_budget = 100;
  runtime::SetThreads(1);
  auto serial = RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin,
                            opts);
  runtime::SetThreads(8);
  auto parallel = RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin,
                              opts);
  runtime::SetThreads(0);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_TRUE(serial->metrics.failed);
  EXPECT_EQ(serial->metrics.failed, parallel->metrics.failed);
  EXPECT_EQ(serial->metrics.fail_reason, parallel->metrics.fail_reason);
  ASSERT_EQ(serial->metrics.stages.size(), parallel->metrics.stages.size());
  for (size_t i = 0; i < serial->metrics.stages.size(); ++i) {
    EXPECT_EQ(serial->metrics.stages[i].failed,
              parallel->metrics.stages[i].failed);
    EXPECT_EQ(serial->metrics.stages[i].output_tuples,
              parallel->metrics.stages[i].output_tuples);
  }
}

TEST(StrategiesTest, SortBudgetFailsTributaryButNotHashJoin) {
  // RS_TJ must sort the (large) intermediate; RS_HJ streams it. With a sort
  // budget squeezed between the two, only RS_TJ FAILs — the paper's Q4/Q5
  // asymmetry.
  NormalizedQuery q = RandomQuery(
      "P(x,w) :- R(x,y), S(y,z), U(z,w).", 14, 300, 8);
  StrategyOptions opts;
  opts.num_workers = 4;
  opts.intermediate_budget = 10'000'000;
  opts.sort_budget = 10;  // absurdly small: any intermediate sort fails
  auto rs_tj =
      RunStrategy(q, ShuffleKind::kRegular, JoinKind::kTributary, opts);
  auto rs_hj =
      RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin, opts);
  ASSERT_TRUE(rs_tj.ok() && rs_hj.ok());
  EXPECT_TRUE(rs_tj->metrics.failed);
  EXPECT_FALSE(rs_hj->metrics.failed);
}

TEST(StrategiesTest, ExplicitJoinOrderIsHonored) {
  NormalizedQuery q = RandomQuery(
      "T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 15, 80, 10);
  StrategyOptions opts;
  opts.num_workers = 4;
  opts.join_order = {2, 1, 0};
  auto result =
      RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->join_order_used, (std::vector<int>{2, 1, 0}));
  EXPECT_TRUE(result->output.EqualsUnordered(ExpectedOutput(q)));
}

TEST(StrategiesTest, ExplicitVarOrderIsHonored) {
  NormalizedQuery q = RandomQuery(
      "T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 16, 80, 10);
  StrategyOptions opts;
  opts.num_workers = 4;
  opts.var_order = {"z", "x", "y"};
  auto result =
      RunStrategy(q, ShuffleKind::kHypercube, JoinKind::kTributary, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->var_order_used, opts.var_order);
  EXPECT_TRUE(result->output.EqualsUnordered(ExpectedOutput(q)));
}

TEST(StrategiesTest, RoundDownConfigStillCorrect) {
  // Sec. 4's motivating pathology: the 4-clique on 15 workers has optimal
  // fractional shares 15^(1/4) ~= 1.96 per variable; rounding down uses a
  // single cell — no parallelism — yet the result must stay correct.
  // Equal cardinalities (a self-join) make the LP optimum the symmetric
  // e_i = 1/4 point.
  Rng rng(18);
  Relation edges =
      test::RandomBinaryRelation("E", {"a", "b"}, 80, 10, &rng);
  Catalog catalog;
  for (const char* alias : {"R", "S", "U", "P", "K", "L"}) {
    Relation copy = edges;
    copy.set_name(alias);
    catalog.Put(std::move(copy));
  }
  auto parsed = ParseDatalog(
      "C(x,y,z,p) :- R(x,y), S(y,z), U(z,p), P(p,x), K(x,z), L(y,p).",
      nullptr);
  ASSERT_TRUE(parsed.ok());
  auto nq = Normalize(*parsed, catalog);
  ASSERT_TRUE(nq.ok());
  NormalizedQuery q = std::move(nq).value();
  StrategyOptions opts;
  opts.num_workers = 15;
  opts.hc_round_down = true;
  auto result =
      RunStrategy(q, ShuffleKind::kHypercube, JoinKind::kTributary, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->output.EqualsUnordered(ExpectedOutput(q)));
  EXPECT_EQ(result->hc_config.NumCells(), 1);

  // Algorithm 1 on the same instance parallelizes (uses > 1 cell).
  opts.hc_round_down = false;
  auto ours =
      RunStrategy(q, ShuffleKind::kHypercube, JoinKind::kTributary, opts);
  ASSERT_TRUE(ours.ok());
  EXPECT_GT(ours->hc_config.NumCells(), 1);
  EXPECT_TRUE(ours->output.EqualsUnordered(ExpectedOutput(q)));
}

TEST(StrategiesTest, SkewAwareRegularShuffleStillCorrect) {
  NormalizedQuery q = RandomQuery(
      "T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 21, 150, 8);  // dense: hubs
  StrategyOptions opts;
  opts.num_workers = 8;
  auto plain =
      RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin, opts);
  opts.rs_skew_aware = true;
  auto aware =
      RunStrategy(q, ShuffleKind::kRegular, JoinKind::kHashJoin, opts);
  ASSERT_TRUE(plain.ok() && aware.ok());
  ASSERT_FALSE(plain->metrics.failed);
  ASSERT_FALSE(aware->metrics.failed);
  EXPECT_TRUE(aware->output.EqualsUnordered(plain->output));
}

TEST(StrategiesTest, MetricsArePopulated) {
  NormalizedQuery q = RandomQuery(
      "T(x,y,z) :- R(x,y), S(y,z), U(z,x).", 19, 150, 14);
  StrategyOptions opts;
  opts.num_workers = 8;
  auto result =
      RunStrategy(q, ShuffleKind::kHypercube, JoinKind::kTributary, opts);
  ASSERT_TRUE(result.ok());
  const QueryMetrics& m = result->metrics;
  EXPECT_EQ(m.shuffles.size(), 3u);  // one HCS per atom
  EXPECT_GT(m.TuplesShuffled(), 0u);
  EXPECT_GT(m.wall_seconds, 0.0);
  EXPECT_GE(m.TotalCpuSeconds(), m.wall_seconds * 0.99);
  EXPECT_EQ(m.worker_seconds.size(), 8u);
  EXPECT_EQ(m.output_tuples, result->output.NumTuples());
}

}  // namespace
}  // namespace ptp
