#ifndef PTP_TESTS_TEST_UTIL_H_
#define PTP_TESTS_TEST_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "query/query.h"
#include "storage/relation.h"

namespace ptp {
namespace test {

/// Brute-force evaluation of a normalized conjunctive query by backtracking
/// over atoms (exponential; only for tiny test inputs). Returns the full
/// binding relation with schema = query.Variables(), no projection.
inline Relation BruteForceJoin(const NormalizedQuery& q) {
  const std::vector<std::string> vars = q.Variables();
  Relation out("brute", Schema(vars));
  std::map<std::string, Value> binding;

  auto predicates_hold = [&](bool all_bound) {
    for (const Predicate& p : q.predicates) {
      Value l, r;
      if (p.lhs.is_variable()) {
        auto it = binding.find(p.lhs.var);
        if (it == binding.end()) {
          if (all_bound) return false;
          continue;
        }
        l = it->second;
      } else {
        l = p.lhs.constant;
      }
      if (p.rhs.is_variable()) {
        auto it = binding.find(p.rhs.var);
        if (it == binding.end()) {
          if (all_bound) return false;
          continue;
        }
        r = it->second;
      } else {
        r = p.rhs.constant;
      }
      if (!Predicate::Eval(l, p.op, r)) return false;
    }
    return true;
  };

  auto recurse = [&](auto&& self, size_t atom_idx) -> void {
    if (atom_idx == q.atoms.size()) {
      if (!predicates_hold(true)) return;
      Tuple t;
      for (const std::string& v : vars) t.push_back(binding.at(v));
      out.AddTuple(t);
      return;
    }
    const NormalizedAtom& atom = q.atoms[atom_idx];
    for (size_t row = 0; row < atom.relation.NumTuples(); ++row) {
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (size_t col = 0; col < atom.variables.size() && ok; ++col) {
        const Value v = atom.relation.At(row, col);
        auto it = binding.find(atom.variables[col]);
        if (it == binding.end()) {
          binding[atom.variables[col]] = v;
          newly_bound.push_back(atom.variables[col]);
        } else if (it->second != v) {
          ok = false;
        }
      }
      if (ok && predicates_hold(false)) self(self, atom_idx + 1);
      for (const std::string& v : newly_bound) binding.erase(v);
    }
  };
  recurse(recurse, 0);
  return out;
}

/// Random binary relation over a small domain (dense enough to join).
inline Relation RandomBinaryRelation(const std::string& name,
                                     const std::vector<std::string>& vars,
                                     size_t tuples, Value domain, Rng* rng) {
  Relation rel(name, Schema(vars));
  for (size_t i = 0; i < tuples; ++i) {
    Tuple t;
    for (size_t c = 0; c < vars.size(); ++c) {
      t.push_back(static_cast<Value>(rng->Uniform(
          static_cast<uint64_t>(domain))));
    }
    rel.AddTuple(t);
  }
  rel.SortAndDedup();
  rel.set_name(name);
  return rel;
}

}  // namespace test
}  // namespace ptp

#endif  // PTP_TESTS_TEST_UTIL_H_
