#include "tj/tributary_join.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace ptp {
namespace {

TEST(TributaryJoinTest, PaperFigure2Example) {
  // Q(x,y,z) :- R(x,y), S(y,z), T(x,z)  on the Figure 2 data.
  Relation r("R", Schema{"x", "y"});
  for (auto [a, b] : std::vector<std::pair<Value, Value>>{
           {0, 1}, {2, 0}, {2, 3}, {2, 5}, {3, 4}, {4, 2}, {5, 6}}) {
    r.AddTuple({a, b});
  }
  Relation s("S", Schema{"y", "z"});
  for (auto [a, b] : std::vector<std::pair<Value, Value>>{
           {0, 1}, {2, 0}, {2, 3}, {2, 5}, {3, 4}, {4, 2}, {5, 6}}) {
    s.AddTuple({a, b});
  }
  Relation t("T", Schema{"x", "z"});
  for (auto [a, b] : std::vector<std::pair<Value, Value>>{
           {0, 2}, {1, 0}, {2, 4}, {3, 2}, {4, 3}, {5, 2}, {6, 5}}) {
    t.AddTuple({a, b});
  }
  TJMetrics metrics;
  auto result = TributaryJoin({&r, &s, &t}, {"x", "y", "z"}, {}, {}, &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The paper walks the algorithm to its first output (2, 3, 4).
  ASSERT_GE(result->NumTuples(), 1u);
  EXPECT_EQ(result->GetTuple(0), (Tuple{2, 3, 4}));
  EXPECT_GT(metrics.seeks, 0u);
  EXPECT_EQ(metrics.output_tuples, result->NumTuples());
}

TEST(TributaryJoinTest, MatchesBruteForceOnTriangles) {
  Rng rng(11);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"x", "y"}, test::RandomBinaryRelation("R", {"x", "y"}, 60, 12, &rng)});
  q.atoms.push_back(
      {{"y", "z"}, test::RandomBinaryRelation("S", {"y", "z"}, 60, 12, &rng)});
  q.atoms.push_back(
      {{"z", "x"}, test::RandomBinaryRelation("T", {"z", "x"}, 60, 12, &rng)});
  q.head_vars = {"x", "y", "z"};
  Relation expected = test::BruteForceJoin(q);
  auto result = TributaryJoinQuery(q, {"x", "y", "z"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->EqualsUnordered(expected));
}

TEST(TributaryJoinTest, ResultIndependentOfVariableOrder) {
  Rng rng(13);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"x", "y"}, test::RandomBinaryRelation("R", {"x", "y"}, 80, 10, &rng)});
  q.atoms.push_back(
      {{"y", "z"}, test::RandomBinaryRelation("S", {"y", "z"}, 80, 10, &rng)});
  q.atoms.push_back(
      {{"z", "x"}, test::RandomBinaryRelation("T", {"z", "x"}, 80, 10, &rng)});
  q.head_vars = {"x", "y", "z"};

  std::vector<std::vector<std::string>> orders = {
      {"x", "y", "z"}, {"x", "z", "y"}, {"y", "x", "z"},
      {"y", "z", "x"}, {"z", "x", "y"}, {"z", "y", "x"}};
  auto first = TributaryJoinQuery(q, orders[0]);
  ASSERT_TRUE(first.ok());
  for (size_t i = 1; i < orders.size(); ++i) {
    auto other = TributaryJoinQuery(q, orders[i]);
    ASSERT_TRUE(other.ok());
    EXPECT_TRUE(first->EqualsUnordered(*other)) << "order #" << i;
  }
}

TEST(TributaryJoinTest, BinaryJoinIsMergeJoin) {
  Rng rng(17);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"a", "b"}, test::RandomBinaryRelation("R", {"a", "b"}, 50, 8, &rng)});
  q.atoms.push_back(
      {{"b", "c"}, test::RandomBinaryRelation("S", {"b", "c"}, 50, 8, &rng)});
  q.head_vars = {"a", "b", "c"};
  Relation expected = test::BruteForceJoin(q);
  // head (a,b,c) != order (b,a,c), so the result is projected back to head.
  auto result = TributaryJoinQuery(q, {"b", "a", "c"});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->EqualsUnordered(expected));
}

TEST(TributaryJoinTest, PredicatesPruneDuringJoin) {
  Rng rng(19);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"x", "y"}, test::RandomBinaryRelation("R", {"x", "y"}, 70, 9, &rng)});
  q.atoms.push_back(
      {{"y", "z"}, test::RandomBinaryRelation("S", {"y", "z"}, 70, 9, &rng)});
  q.head_vars = {"x", "y", "z"};
  q.predicates.push_back(
      Predicate{Term::Var("x"), CmpOp::kLt, Term::Var("z")});
  q.predicates.push_back(Predicate{Term::Var("y"), CmpOp::kGe,
                                   Term::Const(3)});
  Relation expected = test::BruteForceJoin(q);
  auto result = TributaryJoinQuery(q, {"x", "y", "z"});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->EqualsUnordered(expected));
}

TEST(TributaryJoinTest, ProjectionDeduplicates) {
  Relation r("R", Schema{"x", "y"});
  r.AddTuple({1, 10});
  r.AddTuple({1, 20});
  r.AddTuple({2, 10});
  Relation s("S", Schema{"y", "z"});
  s.AddTuple({10, 5});
  s.AddTuple({20, 5});
  NormalizedQuery q;
  q.atoms.push_back({{"x", "y"}, r});
  q.atoms.push_back({{"y", "z"}, s});
  q.head_vars = {"z"};
  auto result = TributaryJoinQuery(q, {"x", "y", "z"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumTuples(), 1u);  // z=5 once (set semantics)
}

TEST(TributaryJoinTest, EmptyInputYieldsEmptyResult) {
  Relation r("R", Schema{"x", "y"});
  Relation s("S", Schema{"y", "z"});
  s.AddTuple({1, 2});
  auto result = TributaryJoin({&r, &s}, {"x", "y", "z"}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumTuples(), 0u);
}

TEST(TributaryJoinTest, OutputBudgetTriggersResourceExhausted) {
  // Cross-product-ish heavy query via a shared variable with one value.
  Relation r("R", Schema{"k", "a"});
  Relation s("S", Schema{"k", "b"});
  for (Value i = 0; i < 100; ++i) {
    r.AddTuple({0, i});
    s.AddTuple({0, i});
  }
  TJOptions opts;
  opts.max_output_rows = 50;
  auto result = TributaryJoin({&r, &s}, {"k", "a", "b"}, {}, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(TributaryJoinTest, SeekBudgetTriggersResourceExhausted) {
  Rng rng(23);
  Relation r = test::RandomBinaryRelation("R", {"x", "y"}, 200, 40, &rng);
  Relation s = test::RandomBinaryRelation("S", {"y", "z"}, 200, 40, &rng);
  TJOptions opts;
  opts.max_seeks = 10;
  auto result = TributaryJoin({&r, &s}, {"x", "y", "z"}, {}, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(TributaryJoinTest, MissingVariableInOrderIsInvalid) {
  Relation r("R", Schema{"x", "y"});
  r.AddTuple({1, 2});
  auto result = TributaryJoin({&r}, {"x"}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TributaryJoinTest, VariableInNoInputIsInvalid) {
  Relation r("R", Schema{"x"});
  r.AddTuple({1});
  auto result = TributaryJoin({&r}, {"x", "ghost"}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// Property sweep: random 4-cycle queries across seeds match brute force.
class TJRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(TJRandomSweep, FourCycleMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  NormalizedQuery q;
  q.atoms.push_back(
      {{"x", "y"}, test::RandomBinaryRelation("R", {"x", "y"}, 40, 8, &rng)});
  q.atoms.push_back(
      {{"y", "z"}, test::RandomBinaryRelation("S", {"y", "z"}, 40, 8, &rng)});
  q.atoms.push_back(
      {{"z", "p"}, test::RandomBinaryRelation("T", {"z", "p"}, 40, 8, &rng)});
  q.atoms.push_back(
      {{"p", "x"}, test::RandomBinaryRelation("K", {"p", "x"}, 40, 8, &rng)});
  q.head_vars = {"x", "y", "z", "p"};
  Relation expected = test::BruteForceJoin(q);
  auto result = TributaryJoinQuery(q, {"x", "y", "z", "p"});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->EqualsUnordered(expected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TJRandomSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace ptp
