// Backend-conformance suite: both TrieCursor implementations (sorted-array
// TrieIterator and B+-tree BTreeTrieIterator) must expose identical trie
// semantics. Parameterized over backend and data seed.

#include <functional>
#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "tj/btree.h"
#include "tj/btree_trie.h"
#include "tj/trie_iterator.h"
#include "tj/tributary_join.h"

namespace ptp {
namespace {

enum class Backend { kArray, kBTree };

struct CursorFixture {
  // Keep the storage alive alongside the cursor.
  Relation sorted;
  std::unique_ptr<BPlusTree> tree;
  std::unique_ptr<TrieCursor> cursor;
};

CursorFixture MakeCursor(Backend backend, const Relation& rel) {
  CursorFixture fx;
  if (backend == Backend::kArray) {
    fx.sorted = rel;
    fx.sorted.SortLex();
    fx.cursor = std::make_unique<TrieIterator>(&fx.sorted);
  } else {
    fx.tree = std::make_unique<BPlusTree>(rel.arity());
    fx.tree->InsertAll(rel);
    fx.cursor = std::make_unique<BTreeTrieIterator>(fx.tree.get());
  }
  return fx;
}

class TrieConformance
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  Backend backend() const {
    return std::get<0>(GetParam()) == 0 ? Backend::kArray : Backend::kBTree;
  }
  uint64_t seed() const {
    return static_cast<uint64_t>(std::get<1>(GetParam()));
  }
};

TEST_P(TrieConformance, FullWalkEnumeratesDistinctTrie) {
  Rng rng(seed());
  Relation rel = test::RandomBinaryRelation("R", {"a", "b"}, 150, 12, &rng);
  CursorFixture fx = MakeCursor(backend(), rel);
  TrieCursor& it = *fx.cursor;

  // Reference: distinct (a) keys and per-a distinct b keys from a sorted
  // dedup'd copy.
  Relation ref = rel;
  ref.SortAndDedup();

  it.Open();
  size_t row = 0;
  while (!it.AtEnd()) {
    ASSERT_LT(row, ref.NumTuples());
    EXPECT_EQ(it.Key(), ref.At(row, 0));
    it.Open();
    while (!it.AtEnd()) {
      ASSERT_LT(row, ref.NumTuples());
      EXPECT_EQ(it.Key(), ref.At(row, 1));
      ++row;
      it.Next();
    }
    it.Up();
    it.Next();
  }
  EXPECT_EQ(row, ref.NumTuples());
}

TEST_P(TrieConformance, SeekSemantics) {
  Relation rel("R", Schema{"a", "b"});
  for (Value a : {2, 5, 9}) {
    for (Value b : {10, 20, 30}) rel.AddTuple({a, b + a});
  }
  CursorFixture fx = MakeCursor(backend(), rel);
  TrieCursor& it = *fx.cursor;
  it.Open();
  it.Seek(3);
  EXPECT_EQ(it.Key(), 5);
  it.Seek(5);  // seek to current: no move
  EXPECT_EQ(it.Key(), 5);
  it.Open();
  EXPECT_EQ(it.Key(), 15);
  it.Seek(24);
  EXPECT_EQ(it.Key(), 25);
  it.Seek(36);  // past the a=5 block
  EXPECT_TRUE(it.AtEnd());
  it.Up();
  EXPECT_EQ(it.Key(), 5);
  it.Next();
  EXPECT_EQ(it.Key(), 9);
}

TEST_P(TrieConformance, SeekCountsTracked) {
  Rng rng(seed() + 100);
  Relation rel = test::RandomBinaryRelation("R", {"a", "b"}, 80, 40, &rng);
  CursorFixture fx = MakeCursor(backend(), rel);
  TrieCursor& it = *fx.cursor;
  it.Open();
  const size_t before = it.num_seeks();
  it.Seek(it.Key() + 1);
  EXPECT_GT(it.num_seeks(), before);
}

TEST_P(TrieConformance, EmptyRelationReported) {
  Relation empty("R", Schema{"a", "b"});
  CursorFixture fx = MakeCursor(backend(), empty);
  EXPECT_TRUE(fx.cursor->EmptyRelation());
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndSeeds, TrieConformance,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(std::get<0>(info.param) == 0 ? "Array" : "BTree") +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(TributaryCountTest, MatchesMaterializedJoin) {
  Rng rng(91);
  NormalizedQuery q;
  q.atoms.push_back(
      {{"x", "y"}, test::RandomBinaryRelation("R", {"x", "y"}, 120, 14, &rng)});
  q.atoms.push_back(
      {{"y", "z"}, test::RandomBinaryRelation("S", {"y", "z"}, 120, 14, &rng)});
  q.atoms.push_back(
      {{"z", "x"}, test::RandomBinaryRelation("T", {"z", "x"}, 120, 14, &rng)});
  q.head_vars = {"x", "y", "z"};
  std::vector<const Relation*> inputs = {&q.atoms[0].relation,
                                         &q.atoms[1].relation,
                                         &q.atoms[2].relation};
  auto materialized = TributaryJoin(inputs, {"x", "y", "z"}, {});
  ASSERT_TRUE(materialized.ok());
  TJMetrics metrics;
  auto count = TributaryCount(inputs, {"x", "y", "z"}, {}, {}, &metrics);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, materialized->NumTuples());
  EXPECT_EQ(metrics.output_tuples, *count);
}

TEST(TributaryCountTest, PredicatesAndBudgets) {
  Relation r("R", Schema{"k", "a"});
  Relation s("S", Schema{"k", "b"});
  for (Value i = 0; i < 50; ++i) {
    r.AddTuple({0, i});
    s.AddTuple({0, i});
  }
  std::vector<Predicate> preds = {
      {Term::Var("a"), CmpOp::kLt, Term::Var("b")}};
  auto count = TributaryCount({&r, &s}, {"k", "a", "b"}, preds);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 50u * 49u / 2);  // pairs with a < b

  TJOptions opts;
  opts.max_output_rows = 100;
  auto capped = TributaryCount({&r, &s}, {"k", "a", "b"}, {}, opts);
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ptp
