#include "tj/trie_iterator.h"

#include <vector>

#include "gtest/gtest.h"
#include "tj/leapfrog.h"

namespace ptp {
namespace {

Relation SortedRel(std::vector<Tuple> rows,
                   std::vector<std::string> names) {
  Relation r("R", Schema(std::move(names)));
  for (const Tuple& t : rows) r.AddTuple(t);
  r.SortLex();
  return r;
}

TEST(TrieIteratorTest, WalksFirstLevelDistinctKeys) {
  Relation r = SortedRel({{1, 5}, {1, 7}, {2, 3}, {4, 1}, {4, 9}}, {"a", "b"});
  TrieIterator it(&r);
  it.Open();
  std::vector<Value> keys;
  while (!it.AtEnd()) {
    keys.push_back(it.Key());
    it.Next();
  }
  EXPECT_EQ(keys, (std::vector<Value>{1, 2, 4}));
}

TEST(TrieIteratorTest, SecondLevelScopedToPrefix) {
  Relation r = SortedRel({{1, 5}, {1, 7}, {2, 3}, {4, 1}, {4, 9}}, {"a", "b"});
  TrieIterator it(&r);
  it.Open();          // a = 1
  it.Open();          // b within a=1
  std::vector<Value> keys;
  while (!it.AtEnd()) {
    keys.push_back(it.Key());
    it.Next();
  }
  EXPECT_EQ(keys, (std::vector<Value>{5, 7}));
  it.Up();
  it.Next();  // a = 2
  EXPECT_EQ(it.Key(), 2);
  it.Open();
  EXPECT_EQ(it.Key(), 3);
}

TEST(TrieIteratorTest, SeekFindsLeastKeyGE) {
  Relation r = SortedRel({{1, 0}, {3, 0}, {7, 0}, {9, 0}}, {"a", "b"});
  TrieIterator it(&r);
  it.Open();
  it.Seek(2);
  EXPECT_EQ(it.Key(), 3);
  it.Seek(3);  // seek to current key: stays
  EXPECT_EQ(it.Key(), 3);
  it.Seek(8);
  EXPECT_EQ(it.Key(), 9);
  it.Seek(10);
  EXPECT_TRUE(it.AtEnd());
}

TEST(TrieIteratorTest, SeekWithinPrefixRange) {
  Relation r = SortedRel({{1, 2}, {1, 4}, {1, 8}, {2, 1}, {2, 9}}, {"a", "b"});
  TrieIterator it(&r);
  it.Open();  // a=1
  it.Open();  // b in {2,4,8}
  it.Seek(5);
  EXPECT_EQ(it.Key(), 8);
  it.Seek(9);  // exceeds the a=1 block; must not leak into a=2's values
  EXPECT_TRUE(it.AtEnd());
}

TEST(TrieIteratorTest, UpRestoresParentPosition) {
  Relation r = SortedRel({{1, 2}, {3, 4}}, {"a", "b"});
  TrieIterator it(&r);
  it.Open();
  it.Next();  // a=3
  it.Open();  // b=4
  EXPECT_EQ(it.Key(), 4);
  it.Up();
  EXPECT_EQ(it.Key(), 3);
}

TEST(TrieIteratorTest, CountsSeeks) {
  Relation r = SortedRel({{1, 0}, {5, 0}}, {"a", "b"});
  TrieIterator it(&r);
  it.Open();
  it.Seek(4);
  it.Seek(6);
  EXPECT_EQ(it.num_seeks(), 2u);
}

TEST(LeapfrogTest, IntersectsThreeLists) {
  Relation a = SortedRel({{1}, {3}, {4}, {7}, {9}}, {"x"});
  Relation b = SortedRel({{2}, {3}, {7}, {8}, {9}}, {"x"});
  Relation c = SortedRel({{0}, {3}, {5}, {7}, {9}, {11}}, {"x"});
  TrieIterator ia(&a), ib(&b), ic(&c);
  ia.Open();
  ib.Open();
  ic.Open();
  LeapfrogJoin lf({&ia, &ib, &ic});
  std::vector<Value> common;
  while (!lf.AtEnd()) {
    common.push_back(lf.Key());
    lf.Next();
  }
  EXPECT_EQ(common, (std::vector<Value>{3, 7, 9}));
}

TEST(LeapfrogTest, EmptyIntersection) {
  Relation a = SortedRel({{1}, {2}}, {"x"});
  Relation b = SortedRel({{3}, {4}}, {"x"});
  TrieIterator ia(&a), ib(&b);
  ia.Open();
  ib.Open();
  LeapfrogJoin lf({&ia, &ib});
  EXPECT_TRUE(lf.AtEnd());
}

TEST(LeapfrogTest, SingleIteratorEnumeratesAll) {
  Relation a = SortedRel({{1}, {5}, {5}, {9}}, {"x"});
  TrieIterator ia(&a);
  ia.Open();
  LeapfrogJoin lf({&ia});
  std::vector<Value> keys;
  while (!lf.AtEnd()) {
    keys.push_back(lf.Key());
    lf.Next();
  }
  EXPECT_EQ(keys, (std::vector<Value>{1, 5, 9}));
}

TEST(LeapfrogTest, SeekAdvancesAllIterators) {
  Relation a = SortedRel({{1}, {4}, {8}, {12}}, {"x"});
  Relation b = SortedRel({{1}, {4}, {8}, {12}}, {"x"});
  TrieIterator ia(&a), ib(&b);
  ia.Open();
  ib.Open();
  LeapfrogJoin lf({&ia, &ib});
  EXPECT_EQ(lf.Key(), 1);
  lf.Seek(5);
  EXPECT_EQ(lf.Key(), 8);
  lf.Seek(100);
  EXPECT_TRUE(lf.AtEnd());
}

}  // namespace
}  // namespace ptp
