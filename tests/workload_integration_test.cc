// Integration tests: every paper workload (Q1..Q8) at a tiny scale must
// produce identical results under all six strategy configurations, the
// standalone Tributary join, and (for acyclic queries) the semijoin plan.

#include "data/workloads.h"
#include "gtest/gtest.h"
#include "plan/semijoin_plan.h"
#include "plan/strategies.h"
#include "tj/order_optimizer.h"
#include "tj/tributary_join.h"

namespace ptp {
namespace {

WorkloadScale TinyScale() {
  WorkloadScale scale;
  scale.twitter.num_nodes = 400;
  scale.twitter.num_edges = 2500;
  scale.twitter.zipf_exponent = 0.7;
  scale.freebase_scale = 0.08;
  scale.seed = 99;
  return scale;
}

class PaperWorkloads : public ::testing::TestWithParam<int> {};

TEST_P(PaperWorkloads, AllEvaluatorsAgree) {
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(GetParam());
  ASSERT_TRUE(wl.ok()) << wl.status().ToString();

  StrategyOptions opts;
  opts.num_workers = 9;  // deliberately not a perfect power

  // Reference: standalone Tributary join with the optimized order.
  OrderChoice order = OptimizeVariableOrder(wl->normalized);
  auto reference = TributaryJoinQuery(wl->normalized, order.order);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (const auto& [shuffle, join] : AllStrategies()) {
    auto result = RunStrategy(wl->normalized, shuffle, join, opts);
    ASSERT_TRUE(result.ok())
        << wl->id << " " << StrategyName(shuffle, join) << ": "
        << result.status().ToString();
    ASSERT_FALSE(result->metrics.failed)
        << wl->id << " " << StrategyName(shuffle, join) << ": "
        << result->metrics.fail_reason;
    EXPECT_TRUE(result->output.EqualsUnordered(*reference))
        << wl->id << " " << StrategyName(shuffle, join) << " diverges ("
        << result->output.NumTuples() << " vs " << reference->NumTuples()
        << ")";
  }

  if (!wl->cyclic) {
    auto semi = RunSemijoinPlan(wl->query, wl->normalized, opts, nullptr);
    ASSERT_TRUE(semi.ok()) << semi.status().ToString();
    EXPECT_TRUE(semi->output.EqualsUnordered(*reference))
        << wl->id << " semijoin plan diverges";
  }
}

INSTANTIATE_TEST_SUITE_P(Q1toQ8, PaperWorkloads, ::testing::Range(1, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(PaperWorkloads, ResultsNonTrivial) {
  // Guard against silently-empty datasets: each workload's best plan must
  // return at least one tuple at the tiny scale... except possibly the
  // most selective ones, which must at least run (checked above). Require
  // non-empty output for the graph queries and Q3/Q7 on the planted data.
  WorkloadFactory factory(TinyScale());
  for (int q : {1, 3, 7}) {
    auto wl = factory.Make(q);
    ASSERT_TRUE(wl.ok());
    StrategyOptions opts;
    opts.num_workers = 4;
    auto result = RunStrategy(wl->normalized, ShuffleKind::kHypercube,
                              JoinKind::kTributary, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->output.NumTuples(), 0u) << wl->id;
  }
}

TEST(PaperWorkloads, MetricsDifferAcrossStrategiesAsExpected) {
  // On the triangle workload: broadcast must shuffle ~W/replication times
  // more than HyperCube, and the HyperCube shuffle must replicate each
  // relation by the product of its unbound dimensions.
  WorkloadFactory factory(TinyScale());
  auto wl = factory.Make(1);
  ASSERT_TRUE(wl.ok());
  StrategyOptions opts;
  opts.num_workers = 8;
  auto hc = RunStrategy(wl->normalized, ShuffleKind::kHypercube,
                        JoinKind::kTributary, opts);
  ASSERT_TRUE(hc.ok());
  EXPECT_EQ(hc->hc_config.dims, (std::vector<int>{2, 2, 2}));
  size_t input = 0;
  for (const auto& atom : wl->normalized.atoms) {
    input += atom.relation.NumTuples();
  }
  // Each binary atom is bound on 2 of 3 dims: replication = 2.
  EXPECT_EQ(hc->metrics.TuplesShuffled(), input * 2);

  auto br = RunStrategy(wl->normalized, ShuffleKind::kBroadcast,
                        JoinKind::kTributary, opts);
  ASSERT_TRUE(br.ok());
  // Two of three relations broadcast to 8 workers.
  EXPECT_EQ(br->metrics.TuplesShuffled(), (input / 3) * 2 * 8);
}

}  // namespace
}  // namespace ptp
